"""Host-side optimization flags.

Every flag here changes *host* behaviour only — wall-clock time and
allocations — never simulated results.  The seeded fault counts and
virtual-clock timings of an experiment must be bit-identical with the
flags on or off; ``tests/integration/test_golden_determinism.py`` pins
that invariant and ``benchmarks/perf`` measures the host-side win.

Flags:

* ``cow_attach`` — template attach / CRIU restore share page-state
  arrays copy-on-write (:mod:`repro.mem.cow`) instead of deep-copying
  them per attach.
* ``trace_cache`` — per-(function, invocation) generated access traces
  are memoised instead of re-drawn from the (stateless, seeded) RNG.
* ``timer_wheel`` — the engine schedules wake-ups on a calendar queue
  (bucket per distinct virtual time, FIFO within a bucket) instead of
  one global binary heap; same-tick wake-ups append in O(1) with no
  heap traffic.  Pop order stays exactly ``(time, seq)``.
* ``dispatch_index`` — cluster dispatch reads incrementally-maintained
  indices (per-function warm-instance map, load-keyed lazy heap)
  instead of scanning every platform per invocation.
* ``stream_metrics`` — :class:`~repro.serverless.metrics.LatencyRecorder`
  additionally folds each sample into fixed-bin log-scale histograms;
  quantile queries become O(bins) (exact below the small-sample
  threshold) and recorders may drop per-invocation storage entirely.
* ``batch_arrivals`` — workload runners pre-compute the arrival
  schedule and schedule each invocation directly at its arrival time
  (``Simulator.spawn_at``) instead of spawning one ``Delay`` generator
  per arrival at t=0.
* ``parallel_sim`` — eligible cluster runs shard per node group across
  worker processes, each advancing its own ``Simulator`` inside
  conservative lookahead windows (:mod:`repro.sim.parallel`,
  :mod:`repro.serverless.parallel`).  Ineligible configurations
  (dynamic dispatch state, armed control plane, injected faults) fall
  back to the serial reference path, so results are bit-identical by
  construction either way.

``FLAGS`` is the machine-readable registry: tooling enumerates it
instead of hard-coding names.  ``repro.analysis`` rule SIM005 reads it
to verify every flag's fast/slow path pair is exercised by at least one
test, and the context managers below toggle exactly this set.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Tuple

#: Every optimization flag, in declaration order.  Each name is a module
#: attribute holding a bool; add new flags here and nowhere else.
FLAGS: Tuple[str, ...] = ("cow_attach", "trace_cache", "timer_wheel",
                          "dispatch_index", "stream_metrics",
                          "batch_arrivals", "parallel_sim")

cow_attach: bool = True
trace_cache: bool = True
timer_wheel: bool = True
dispatch_index: bool = True
stream_metrics: bool = True
batch_arrivals: bool = True
parallel_sim: bool = True


def _snapshot() -> Tuple[bool, ...]:
    return tuple(bool(globals()[name]) for name in FLAGS)


def _restore(saved: Tuple[bool, ...]) -> None:
    for name, value in zip(FLAGS, saved):
        globals()[name] = value


def _set_all(value: bool) -> None:
    for name in FLAGS:
        globals()[name] = value


@contextmanager
def optimizations_disabled() -> Iterator[None]:
    """Run a block on the copying / no-cache baseline paths."""
    saved = _snapshot()
    _set_all(False)
    try:
        yield
    finally:
        _restore(saved)


@contextmanager
def disabled(*names: str) -> Iterator[None]:
    """Turn off just the named flags (the rest keep their values)."""
    for name in names:
        if name not in FLAGS:
            raise ValueError(f"unknown optflag {name!r}; known: {FLAGS}")
    saved = _snapshot()
    for name in names:
        globals()[name] = False
    try:
        yield
    finally:
        _restore(saved)


@contextmanager
def optimizations_enabled() -> Iterator[None]:
    """Force the optimised paths on (e.g. inside a disabled block)."""
    saved = _snapshot()
    _set_all(True)
    try:
        yield
    finally:
        _restore(saved)
