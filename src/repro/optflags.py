"""Host-side optimization flags.

Every flag here changes *host* behaviour only — wall-clock time and
allocations — never simulated results.  The seeded fault counts and
virtual-clock timings of an experiment must be bit-identical with the
flags on or off; ``tests/integration/test_golden_determinism.py`` pins
that invariant and ``benchmarks/perf`` measures the host-side win.

Flags:

* ``cow_attach`` — template attach / CRIU restore share page-state
  arrays copy-on-write (:mod:`repro.mem.cow`) instead of deep-copying
  them per attach.
* ``trace_cache`` — per-(function, invocation) generated access traces
  are memoised instead of re-drawn from the (stateless, seeded) RNG.

``FLAGS`` is the machine-readable registry: tooling enumerates it
instead of hard-coding names.  ``repro.analysis`` rule SIM005 reads it
to verify every flag's fast/slow path pair is exercised by at least one
test, and the context managers below toggle exactly this set.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Tuple

#: Every optimization flag, in declaration order.  Each name is a module
#: attribute holding a bool; add new flags here and nowhere else.
FLAGS: Tuple[str, ...] = ("cow_attach", "trace_cache")

cow_attach: bool = True
trace_cache: bool = True


def _snapshot() -> Tuple[bool, ...]:
    return tuple(bool(globals()[name]) for name in FLAGS)


def _restore(saved: Tuple[bool, ...]) -> None:
    for name, value in zip(FLAGS, saved):
        globals()[name] = value


def _set_all(value: bool) -> None:
    for name in FLAGS:
        globals()[name] = value


@contextmanager
def optimizations_disabled() -> Iterator[None]:
    """Run a block on the copying / no-cache baseline paths."""
    saved = _snapshot()
    _set_all(False)
    try:
        yield
    finally:
        _restore(saved)


@contextmanager
def optimizations_enabled() -> Iterator[None]:
    """Force the optimised paths on (e.g. inside a disabled block)."""
    saved = _snapshot()
    _set_all(True)
    try:
        yield
    finally:
        _restore(saved)
