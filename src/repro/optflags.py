"""Host-side optimization flags.

Every flag here changes *host* behaviour only — wall-clock time and
allocations — never simulated results.  The seeded fault counts and
virtual-clock timings of an experiment must be bit-identical with the
flags on or off; ``tests/integration/test_golden_determinism.py`` pins
that invariant and ``benchmarks/perf`` measures the host-side win.

Flags:

* ``cow_attach`` — template attach / CRIU restore share page-state
  arrays copy-on-write (:mod:`repro.mem.cow`) instead of deep-copying
  them per attach.
* ``trace_cache`` — per-(function, invocation) generated access traces
  are memoised instead of re-drawn from the (stateless, seeded) RNG.
"""

from __future__ import annotations

from contextlib import contextmanager

cow_attach: bool = True
trace_cache: bool = True


@contextmanager
def optimizations_disabled():
    """Run a block on the copying / no-cache baseline paths."""
    global cow_attach, trace_cache
    saved = (cow_attach, trace_cache)
    cow_attach = trace_cache = False
    try:
        yield
    finally:
        cow_attach, trace_cache = saved


@contextmanager
def optimizations_enabled():
    """Force the optimised paths on (e.g. inside a disabled block)."""
    global cow_attach, trace_cache
    saved = (cow_attach, trace_cache)
    cow_attach = trace_cache = True
    try:
        yield
    finally:
        cow_attach, trace_cache = saved
