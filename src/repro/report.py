"""Result export: CSV/JSON dumps and markdown comparison reports.

Turns :class:`~repro.serverless.runner.RunResult` objects (and agent
recorders) into artifacts a downstream user can archive or diff across
runs — per-invocation CSVs, summary JSON, and the markdown tables used
in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import json
import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.serverless.metrics import LatencyRecorder
from repro.serverless.runner import RunResult


def invocations_to_csv(recorder: LatencyRecorder, path) -> int:
    """Write one row per measured invocation; returns rows written.

    A streaming recorder (``keep_results=False``) retains no
    per-invocation rows; rather than crash, this falls back to
    :func:`summary_to_csv` — one per-function summary row derived from
    the recorder's histograms — and warns about the downgrade.
    """
    if not recorder.keep_results:
        warnings.warn(
            "recorder was built with keep_results=False (streaming mode): "
            "per-invocation rows were not retained; writing the "
            "histogram-derived per-function summary instead",
            stacklevel=2)
        return summary_to_csv(recorder, path)
    path = Path(path)
    rows = recorder.measured()
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(("function", "arrival", "start_kind", "startup_s",
                         "exec_s", "e2e_s"))
        for r in rows:
            writer.writerow((r.function, f"{r.arrival:.6f}", r.start_kind,
                             f"{r.startup:.6f}", f"{r.exec:.6f}",
                             f"{r.e2e:.6f}"))
    return len(rows)


def summary_to_csv(recorder: LatencyRecorder, path) -> int:
    """Write one summary row per function; returns rows written.

    Works in both recorder regimes — this is the export a streaming
    (``keep_results=False``) recorder can always answer.
    """
    path = Path(path)
    summary = recorder.summary()
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(("function", "count", "p50_e2e_s", "p99_e2e_s",
                         "p99_startup_s"))
        for fn in sorted(summary):
            row = summary[fn]
            writer.writerow((fn, row["count"], f"{row['p50_e2e']:.6f}",
                             f"{row['p99_e2e']:.6f}",
                             f"{row['p99_startup']:.6f}"))
    return len(summary)


def run_result_summary(result: RunResult) -> Dict:
    """A JSON-safe summary of one platform × workload run."""
    rec = result.recorder
    return {
        "platform": result.platform,
        "workload": result.workload,
        "metrics_mode": "streaming" if not rec.keep_results else "exact",
        "invocations": rec.count(),
        "p50_e2e_s": rec.e2e_percentile(50),
        "p99_e2e_s": rec.e2e_percentile(99),
        "p99_startup_s": rec.startup_percentile(99),
        "peak_memory_mb": result.peak_memory_mb,
        "integral_mb_s": result.integral_mb_seconds,
        "cpu_utilization": result.cpu_utilization,
        "start_kinds": rec.start_kind_counts(),
        "per_function": rec.summary(),
        "platform_stats": result.platform_stats,
    }


def write_summary_json(results: Sequence[RunResult], path) -> None:
    payload = [run_result_summary(r) for r in results]
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def comparison_markdown(results: Sequence[RunResult],
                        title: str = "Platform comparison") -> str:
    """A README/EXPERIMENTS-style markdown table across platforms."""
    if not results:
        raise ValueError("no results to report")
    lines = [f"## {title}", ""]
    lines.append("| platform | P50 ms | P99 ms | P99 startup ms | "
                 "peak MB | warm % |")
    lines.append("|---|---|---|---|---|---|")
    for result in results:
        rec = result.recorder
        kinds = rec.start_kind_counts()
        total = max(1, sum(kinds.values()))
        warm_pct = 100.0 * kinds.get("warm", 0) / total
        lines.append(
            f"| {result.platform} "
            f"| {rec.e2e_percentile(50) * 1e3:.1f} "
            f"| {rec.e2e_percentile(99) * 1e3:.1f} "
            f"| {rec.startup_percentile(99) * 1e3:.1f} "
            f"| {result.peak_memory_mb:.0f} "
            f"| {warm_pct:.0f}% |")
    lines.append("")
    return "\n".join(lines)


def speedup_table(results: Sequence[RunResult], baseline: str,
                  percentile: float = 99.0) -> Dict[str, Dict[str, float]]:
    """Per-function speedups of every platform over ``baseline``."""
    by_name = {r.platform: r for r in results}
    if baseline not in by_name:
        raise KeyError(f"baseline {baseline!r} not among results")
    base = by_name[baseline].recorder
    out: Dict[str, Dict[str, float]] = {}
    for name, result in by_name.items():
        if name == baseline:
            continue
        rec = result.recorder
        out[name] = {}
        for fn in rec.functions():
            base_p = base.e2e_percentile(percentile, fn)
            ours = rec.e2e_percentile(percentile, fn)
            if ours > 0 and base_p == base_p:   # skip NaN baselines
                out[name][fn] = base_p / ours
    return out
