"""The mm-template API (Figure 11).

An :class:`MemoryTemplate` is the in-kernel object of Figure 8: a
process-shaped memory layout (VMAs + a pre-built page table) that is

1. not bound to any particular process — it can be attached to any number
   of restored processes, on any host sharing the pool;
2. entirely read-only toward remote memory, with writes handled by CoW;
3. precise about virtual→physical mappings: for CXL it installs *valid*
   write-protected PTEs (zero-fault reads), for RDMA *invalid* PTEs
   carrying the remote address (lazy 4 KiB fetches).

The registry mirrors the kernel implementation: templates are managed in
an XArray-like map keyed by id, exposed through ioctl-shaped methods on a
root-only pseudo-device (§7, §8.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.analysis import hooks
from repro.criu.images import SnapshotImage
from repro.obs import hooks as obs_hooks
from repro.mem.address_space import (MAP_PRIVATE, AddressSpace, VMA)
from repro.mem.pools import DedupStore, MemoryPool, PoolBlock
from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel


class MMTemplateError(RuntimeError):
    """ioctl-level failure (bad id, permission, layout misuse)."""


#: per-PTE metadata copy cost during attach (8 bytes through the kernel).
_ATTACH_PER_PAGE = 1.2e-9


class MemoryTemplate:
    """One mm-template: layout metadata plus a pre-built page table."""

    def __init__(self, template_id: int, key: str):
        self.template_id = template_id
        self.key = key
        self.vmas: List[VMA] = []
        self.attach_count = 0
        self.sealed = False

    @property
    def total_pages(self) -> int:
        return sum(v.npages for v in self.vmas)

    @property
    def metadata_bytes(self) -> int:
        return self.total_pages * 8 + len(self.vmas) * 64

    def find_vma(self, name: str) -> VMA:
        for vma in self.vmas:
            if vma.name == name:
                return vma
        raise MMTemplateError(f"template {self.key}: no VMA {name!r}")


class MMTemplateRegistry:
    """The pseudo-device: ioctl-shaped template management.

    All operations require root (``as_root=True`` at construction of the
    caller's handle) — §8.1: "only users with root privileges can access
    that device".
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self._templates: Dict[int, MemoryTemplate] = {}   # the XArray
        self._ids = itertools.count(1)

    # -- ioctl surface (Figure 11) ---------------------------------------------

    def mmt_create(self, key: str, as_root: bool = True) -> MemoryTemplate:
        """Create an empty template; returns it (id inside)."""
        self._check_root(as_root)
        template = MemoryTemplate(next(self._ids), key)
        self._templates[template.template_id] = template
        return template

    def mmt_get(self, template_id: int) -> MemoryTemplate:
        got = self._templates.get(template_id)
        if got is None:
            raise MMTemplateError(f"no template with id {template_id}")
        return got

    def mmt_delete(self, template_id: int, as_root: bool = True) -> None:
        self._check_root(as_root)
        if template_id not in self._templates:
            raise MMTemplateError(f"no template with id {template_id}")
        del self._templates[template_id]

    def mmt_add_map(self, template: MemoryTemplate, name: str, npages: int,
                    prot: int, flags: int = MAP_PRIVATE,
                    as_root: bool = True) -> VMA:
        """Add a virtual memory area to the template (preprocessing)."""
        self._check_root(as_root)
        if template.sealed:
            raise MMTemplateError("template already sealed by setup_pt")
        start = template.vmas[-1].end + 4096 if template.vmas else 0x400000
        vma = VMA(name, start, npages, prot, flags)
        template.vmas.append(vma)
        return vma

    def mmt_setup_pt(self, template: MemoryTemplate, vma_name: str,
                     block: PoolBlock, as_root: bool = True) -> None:
        """Point a template VMA's PTEs at a pool block.

        For byte-addressable pools the PTEs are installed *valid* and
        write-protected (reads are plain loads); otherwise they are left
        invalid with the remote address recorded for the fault path.
        """
        self._check_root(as_root)
        vma = template.find_vma(vma_name)
        if block.npages != vma.npages:
            raise MMTemplateError(
                f"block covers {block.npages} pages, VMA {vma_name!r} has "
                f"{vma.npages}")
        from repro.mem.address_space import PTE_REMOTE_INVALID, PTE_REMOTE_RO
        valid = block.pool.valid_mask(block.offsets)
        vma.state[:] = np.where(valid, PTE_REMOTE_RO,
                                PTE_REMOTE_INVALID).astype(np.uint8)
        vma.offsets[:] = block.offsets
        vma.pool = block.pool
        if hooks.active is not None:
            hooks.active.on_pte_bound(vma)

    def mmt_attach(self, template: MemoryTemplate, space: AddressSpace,
                   as_root: bool = True, ctx=None) -> Generator:
        """Timed: attach the template to a process's address space.

        Copies *metadata only* — page tables and VMA descriptors — never
        page contents.  Cost: one ioctl plus a linear metadata walk; the
        400 KB of metadata for a 70 MB image copies in well under a
        millisecond (§9.4).

        Host-side the clone is O(1) per VMA: ``clone_metadata`` shares
        the template's frozen arrays copy-on-write (:mod:`repro.mem.cow`)
        and the attached instance materialises only the chunks its
        invocations write.  The simulated cost formula above is
        deliberately unchanged by that flag.
        """
        self._check_root(as_root)
        t0 = self.sim.now
        lat = self.latency.mem
        cost = (lat.mmt_attach_base
                + lat.mmt_attach_per_vma * len(template.vmas)
                + _ATTACH_PER_PAGE * template.total_pages)
        yield Delay(cost)
        for vma in template.vmas:
            space.adopt_vma(vma.clone_metadata())
        template.attach_count += 1
        template.sealed = True
        act = obs_hooks.active
        if act is not None:
            act.on_mmt_attach(template, t0, self.sim.now, ctx)

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _check_root(as_root: bool) -> None:
        if not as_root:
            raise MMTemplateError(
                "permission denied: /dev/mm_template requires root")

    def __len__(self) -> int:
        return len(self._templates)


def build_template_for_function(registry: MMTemplateRegistry,
                                image: SnapshotImage,
                                store: DedupStore,
                                hot_mask=None) -> MemoryTemplate:
    """Offline preprocessing (Figure 12 steps 1–4).

    Deduplicates the snapshot into the pool's consolidated image, creates
    a template, recreates the VMA layout, and links every VMA to its pool
    block.  ``hot_mask`` (image-wide, optional) drives per-page tier
    placement on tiered pools (:mod:`repro.mem.tiering`).  Returns the
    ready-to-attach template.
    """
    template = registry.mmt_create(image.function)
    cursor = 0
    for vma_desc, content in image.vma_content_slices():
        registry.mmt_add_map(template, vma_desc.name, vma_desc.npages,
                             vma_desc.prot, vma_desc.flags)
        vma_mask = None
        if hot_mask is not None:
            vma_mask = np.asarray(hot_mask, dtype=bool)[
                cursor:cursor + vma_desc.npages]
        block = store.store_image(content, hot_mask=vma_mask)
        registry.mmt_setup_pt(template, vma_desc.name, block)
        cursor += vma_desc.npages
        # Content ids travel with the template so re-snapshotting and
        # accounting remain possible.
        template.find_vma(vma_desc.name).content[:] = content
    return template
