"""TrEnv's core contribution.

* :mod:`repro.core.mm_template` — the mm-template kernel API
  (``mmt_create``/``mmt_add_map``/``mmt_setup_pt``/``mmt_attach``,
  Figure 11) over simulated page tables and disaggregated pools.
* :mod:`repro.core.repurpose` — repurposable sandboxes: cleanse, pool,
  rootfs reconfiguration, cgroup reuse (§4, §5.2).
* :mod:`repro.core.config` — feature toggles driving the Figure 21
  ablation.
* :mod:`repro.core.platform` — the TrEnv container-mode serverless
  platform; the VM-mode agent platform lives in :mod:`repro.agents`.
"""

from repro.core.config import TrEnvConfig
from repro.core.mm_template import (
    MMTemplateError,
    MMTemplateRegistry,
    MemoryTemplate,
    build_template_for_function,
)
from repro.core.repurpose import RepurposableSandboxPool, Repurposer
from repro.core.platform import TrEnvPlatform

__all__ = [
    "TrEnvPlatform",
    "MMTemplateError",
    "MMTemplateRegistry",
    "MemoryTemplate",
    "RepurposableSandboxPool",
    "Repurposer",
    "TrEnvConfig",
    "build_template_for_function",
]
