"""TrEnv feature configuration.

Each flag corresponds to one optimisation the paper ablates in Figure 21:

* ``reconfig`` — sandbox repurposing with rootfs reconfiguration
  (the "Reconfig" step, ~200 ms saved).
* ``clone_into_cgroup`` — CLONE_INTO_CGROUP instead of spawn-then-migrate
  (the "Cgroup" step, 13–49 ms saved).
* ``mm_template`` — template attach instead of full memory copy
  (the "mm-template" step, 67–290 ms saved).

VM-mode extras (§6):

* ``browser_sharing`` — multiple agents share one browser (TrEnv-S).
* ``pmem_rootfs`` — virtio-pmem base + O_DIRECT overlay instead of
  virtio-blk (page-cache dedup, Figure 25).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TrEnvConfig:
    reconfig: bool = True
    clone_into_cgroup: bool = True
    mm_template: bool = True
    browser_sharing: bool = False
    pmem_rootfs: bool = True
    #: Pool backend for templates: "cxl", "rdma", or "tiered".
    pool_backend: str = "cxl"
    #: Max idle repurposable sandboxes kept per node.
    sandbox_pool_limit: int = 64
    #: Keep-alive window for warm same-function instances (seconds).
    keep_alive: float = 600.0
    #: Groundhog-style sequential request isolation (§10): roll the
    #: instance's memory back to the pristine template state after every
    #: invocation, so consecutive requests in the same warm instance
    #: cannot observe each other.  Cheap under mm-template: drop the CoW
    #: pages and re-attach the metadata.
    sequential_isolation: bool = False

    def with_(self, **kwargs) -> "TrEnvConfig":
        """A copy with selected fields replaced (ablation helper)."""
        return replace(self, **kwargs)

    @staticmethod
    def ablation_steps():
        """The Figure 21 ladder: baseline -> +Reconfig -> +Cgroup -> full."""
        return [
            ("CRIU", TrEnvConfig(reconfig=False, clone_into_cgroup=False,
                                 mm_template=False)),
            ("Reconfig", TrEnvConfig(reconfig=True, clone_into_cgroup=False,
                                     mm_template=False)),
            ("Cgroup", TrEnvConfig(reconfig=True, clone_into_cgroup=True,
                                   mm_template=False)),
            ("mm-template", TrEnvConfig(reconfig=True, clone_into_cgroup=True,
                                        mm_template=True)),
        ]
