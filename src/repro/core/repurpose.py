"""Repurposable sandboxes (§4, §5.2).

Instead of discarding a finished instance's sandbox, TrEnv *cleanses* it
(kill processes, close connections, purge file modifications) and parks
it in a **function-agnostic pool**.  A pending invocation of any function
— any language, container or jailer style — repurposes a pooled sandbox:

* rootfs reconfiguration: swap only the function-specific overlay
  (2 mounts vs >9 mounts + mknods + pivot_root);
* cgroup reuse: rewrite limits, and assign restored processes via
  CLONE_INTO_CGROUP rather than migration;
* memory: CRIU "repurpose-and-join" restores threads/fds, then
  ``mmt_attach`` maps the function's memory template.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.container.container import ContainerSandbox, SandboxState
from repro.container.rootfs import FunctionOverlayPool, RootfsBuilder
from repro.container.runtime import ContainerRuntime
from repro.core.config import TrEnvConfig
from repro.core.mm_template import MemoryTemplate, MMTemplateRegistry
from repro.criu.images import SnapshotImage
from repro.kernel.cgroup import CgroupLimits
from repro.kernel.process import Process
from repro.node import Node
from repro.sim.engine import Delay
from repro.workloads.functions import FunctionProfile


class RepurposableSandboxPool:
    """LIFO pool of cleansed, function-agnostic sandboxes."""

    def __init__(self, limit: int = 64):
        self.limit = limit
        self._free: List[ContainerSandbox] = []
        self.hits = 0
        self.misses = 0

    def put(self, sandbox: ContainerSandbox) -> bool:
        """Park a cleansed sandbox; False if the pool is full."""
        if sandbox.leaks_previous_tenant():
            raise AssertionError(
                "refusing to pool a sandbox with residual tenant state")
        if len(self._free) >= self.limit:
            return False
        sandbox.state = SandboxState.POOLED
        self._free.append(sandbox)
        return True

    def take(self) -> Optional[ContainerSandbox]:
        """Pop any pooled sandbox (most recently cleansed first)."""
        if self._free:
            self.hits += 1
            return self._free.pop()
        self.misses += 1
        return None

    def clear(self) -> None:
        """Drop every pooled sandbox (node crash: pool state is lost)."""
        self._free.clear()

    def __len__(self) -> int:
        return len(self._free)


class Repurposer:
    """Implements the online phase B1–B4 of Figure 6."""

    def __init__(self, node: Node, runtime: ContainerRuntime,
                 registry: MMTemplateRegistry,
                 overlay_pool: Optional[FunctionOverlayPool] = None,
                 config: Optional[TrEnvConfig] = None):
        self.node = node
        self.runtime = runtime
        self.registry = registry
        self.rootfs = RootfsBuilder(node.sim, node.latency)
        self.overlays = overlay_pool or FunctionOverlayPool(
            node.sim, node.latency)
        self.config = config or TrEnvConfig()
        self.cleanses = 0
        self.repurposes = 0

    # -- B1: cleanse ---------------------------------------------------------------

    def cleanse(self, sandbox: ContainerSandbox) -> Generator:
        """Timed: scrub all tenant state out of a finished sandbox.

        Kills every process except the namespace-anchoring init, closes
        network connections, unmounts the function overlay, and hands the
        overlay's upper-dir purge to an async worker (§5.2.1).
        """
        node = self.node
        init = sandbox.init_process
        for proc in list(sandbox.processes):
            if proc is not init and proc.alive:
                yield node.procs.kill_tree(proc)
        sandbox.processes = [init] if init is not None else []
        sandbox.netns.terminate_connections()
        if sandbox.netns.customised:
            sandbox.netns.reset_configuration()
        old = yield self._swap_out(sandbox)
        if old is not None:
            # Purge runs asynchronously off the critical path.
            node.sim.spawn(self.overlays.release(sandbox.function, old),
                           name="overlay-purge")
        sandbox.function_overlay = None
        sandbox.function = None
        sandbox.last_used = node.now
        self.cleanses += 1

    def _swap_out(self, sandbox: ContainerSandbox) -> Generator:
        table = sandbox.mount_table
        from repro.container.rootfs import FUNCTION_MOUNTPOINT
        if table.mount_depth(FUNCTION_MOUNTPOINT) > 0:
            old = yield table.umount(FUNCTION_MOUNTPOINT)
            return old
        return None
        yield  # pragma: no cover

    # -- B2-B4: repurpose ---------------------------------------------------------------

    def repurpose(self, sandbox: ContainerSandbox, profile: FunctionProfile,
                  image: SnapshotImage,
                  template: Optional[MemoryTemplate],
                  limits: Optional[CgroupLimits] = None,
                  ctx=None) -> Generator:
        """Timed: turn a pooled sandbox into a live instance of ``profile``.

        With ``config.mm_template`` the memory state arrives via
        ``mmt_attach``; otherwise CRIU's copy-based restore runs inside
        the reused sandbox (the Figure 21 "Cgroup"-only configuration).
        Returns the restored function process.
        """
        node = self.node
        config = self.config
        # B2a: mount the function-specific overlay (pool hit: ~sub-ms).
        overlay = yield self.overlays.acquire(profile.name)
        yield self.rootfs.swap_function_overlay(sandbox.mount_table, overlay)
        sandbox.function_overlay = overlay
        # B2b: reconfigure the pooled cgroup's limits.
        yield node.cgroups.reconfigure(sandbox.cgroup,
                                       limits or CgroupLimits())
        # B3: CRIU repurpose-and-join: new process enters the existing
        # namespaces/cgroup and recovers non-memory state.
        space_hook = node.memory.page_delta_hook("function-anon")
        if template is not None and config.mm_template:
            from repro.mem.address_space import AddressSpace
            space = AddressSpace(f"{profile.name}@{sandbox.sandbox_id}",
                                 on_local_delta=space_hook)
            proc = yield node.procs.spawn(
                profile.name, address_space=space, cgroup=sandbox.cgroup,
                into_cgroup=config.clone_into_cgroup)
            yield node.criu.restore_process_state(proc, image, ctx=ctx)
            # B4: attach the memory template (metadata-only copy).
            yield self.registry.mmt_attach(template, space, ctx=ctx)
        else:
            # Copy-based restore inside the reused sandbox.
            yield Delay(node.latency.mem.mmap_syscall * len(image.vmas))
            yield Delay(node.latency.memory_copy(image.nbytes))
            space = image.build_address_space(
                f"{profile.name}@{sandbox.sandbox_id}",
                on_local_delta=space_hook)
            for vma in space.vmas:
                space.populate_local(vma)
            proc = yield node.procs.spawn(
                profile.name, address_space=space, cgroup=sandbox.cgroup,
                into_cgroup=config.clone_into_cgroup)
            yield node.criu.restore_process_state(proc, image, ctx=ctx)
        sandbox.processes.append(proc)
        sandbox.function = profile.name
        sandbox.generation += 1
        sandbox.state = SandboxState.ACTIVE
        self.repurposes += 1
        return proc
