"""The TrEnv container-mode platform (§4–§5, §7).

Scheduling policy (§7): a pending invocation first reuses a warm
same-function instance (keep-alive, like every baseline); failing that it
repurposes any sandbox from the function-agnostic pool; failing that it
*steals* the least-recently-used idle instance of another function,
cleanses it, and repurposes it; only with nothing available does it fall
back to building a sandbox cold (with the memory state still arriving via
mm-template, never a bootstrap).

Expired or pressure-evicted instances are cleansed into the repurposable
pool rather than destroyed, which is what keeps the sandbox-creation cost
off the critical path under bursty load.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.container.container import ContainerSandbox, SandboxState
from repro.container.runtime import ContainerRuntime
from repro.core.config import TrEnvConfig
from repro.core.mm_template import (MemoryTemplate, MMTemplateRegistry,
                                    build_template_for_function)
from repro.core.repurpose import RepurposableSandboxPool, Repurposer
from repro.criu.images import SnapshotImage
from repro.mem.pools import DedupStore, MemoryPool
from repro.node import Node
from repro.serverless.base import Instance, ServerlessPlatform
from repro.workloads.functions import FunctionProfile


class TrEnvPlatform(ServerlessPlatform):
    """TrEnv on containers, backed by a CXL or RDMA memory pool."""

    def __init__(self, node: Node, pool: MemoryPool,
                 config: Optional[TrEnvConfig] = None,
                 keep_alive: float = 600.0, seed: int = 0,
                 name: Optional[str] = None,
                 store: Optional[DedupStore] = None):
        """``store`` may be shared by several nodes' platforms: the pool
        then holds ONE deduplicated copy of every image for the whole
        rack (§8.2: "only one copy is needed per rack if it is
        read-only")."""
        self.config = config or TrEnvConfig()
        self.name = name or f"trenv-{pool.name}"
        super().__init__(node, keep_alive, seed)
        self.pool = pool
        self.register_pool(pool)
        self.runtime = ContainerRuntime(node)
        self.registry = MMTemplateRegistry(node.sim, node.latency)
        if store is not None and store.pool is not pool:
            raise ValueError("shared store must live on this platform's pool")
        self.store = store if store is not None else DedupStore(pool)
        self.repurposer = Repurposer(node, self.runtime, self.registry,
                                     config=self.config)
        self.sandbox_pool = RepurposableSandboxPool(
            limit=self.config.sandbox_pool_limit)
        self.images: Dict[str, SnapshotImage] = {}
        self.templates: Dict[str, MemoryTemplate] = {}
        #: Functions degraded to copy-based restore because the pool ran
        #: out of space during preprocessing.
        self.pool_exhausted_functions: set = set()
        #: Acquisitions that fell back to copy-based restore because the
        #: pool was offline at start time (see repro.faults).
        self.degraded_acquires = 0

    # -- preprocessing (§4 phase A) -------------------------------------------------

    def _preprocess(self, profile: FunctionProfile) -> None:
        image = SnapshotImage.from_profile(profile)
        self.images[profile.name] = image
        if self.config.mm_template:
            hot_mask = None
            if hasattr(self.pool, "allocate_pages_masked"):
                # Tiered pool: place the recorded working set in the hot
                # (byte-addressable) tier, cold pages below.
                from repro.mem.tiering import working_set_hot_mask
                hot_mask = working_set_hot_mask(profile, self.trace_rng)
            try:
                self.templates[profile.name] = build_template_for_function(
                    self.registry, image, self.store, hot_mask=hot_mask)
            except MemoryError:
                # Pool exhausted: degrade this function to the CRIU
                # copy-based path (§7's fallback) rather than failing
                # invocations at runtime.
                self.pool_exhausted_functions.add(profile.name)
        self.repurposer.overlays.prewarm(profile.name, count=4)

    # -- acquisition (§7 scheduling policy) ---------------------------------------------

    def _acquire(self, profile: FunctionProfile, ctx=None) -> Generator:
        if self.config.reconfig:
            sandbox = self.sandbox_pool.take()
            if sandbox is not None:
                proc, degraded = yield self._do_repurpose(sandbox, profile,
                                                          ctx)
                inst = Instance(profile, proc.address_space, payload=sandbox)
                inst.degraded_start = degraded
                return inst, "repurposed"
            victim = self.warm.lru_victim()
            if victim is not None:
                self.warm.remove(victim)
                sandbox = victim.payload
                victim.retired = True
                yield self.repurposer.cleanse(sandbox)
                proc, degraded = yield self._do_repurpose(sandbox, profile,
                                                          ctx)
                inst = Instance(profile, proc.address_space, payload=sandbox)
                inst.degraded_start = degraded
                return inst, "repurposed"
        inst = yield self._cold_start(profile, ctx)
        return inst, "cold"

    def _do_repurpose(self, sandbox: ContainerSandbox,
                      profile: FunctionProfile, ctx=None) -> Generator:
        template, degraded = self._usable_template(profile)
        proc = yield self.repurposer.repurpose(
            sandbox, profile, self.images[profile.name], template, ctx=ctx)
        return proc, degraded

    def _usable_template(self, profile: FunctionProfile
                         ) -> Tuple[Optional[MemoryTemplate], bool]:
        """The function's mm-template, or None when the pool behind it is
        unreachable — the repurposer/cold path then restores by copy, so
        a dead pool degrades latency instead of failing the start.
        Returns ``(template, degraded)``."""
        template = self.templates.get(profile.name)
        if template is None:
            return None, False
        if not self.pool.available:
            self.degraded_acquires += 1
            return None, True
        return template, False

    def _cold_start(self, profile: FunctionProfile, ctx=None) -> Generator:
        """Sandbox built from scratch; memory still via template/restore."""
        node = self.node
        sandbox = yield self.runtime.create_sandbox_cold(
            profile.name, clone_into_cgroup=self.config.clone_into_cgroup)
        image = self.images[profile.name]
        hook = node.memory.page_delta_hook("function-anon")
        template, degraded = self._usable_template(profile)
        if template is not None and self.config.mm_template:
            from repro.mem.address_space import AddressSpace
            space = AddressSpace(f"{profile.name}@{sandbox.sandbox_id}",
                                 on_local_delta=hook)
            proc = yield node.procs.spawn(
                profile.name, address_space=space, cgroup=sandbox.cgroup,
                into_cgroup=self.config.clone_into_cgroup)
            yield node.criu.restore_process_state(proc, image, ctx=ctx)
            yield self.registry.mmt_attach(template, space, ctx=ctx)
        else:
            proc = yield node.criu.restore_full(
                image, f"{profile.name}@{sandbox.sandbox_id}",
                on_local_delta=hook, ctx=ctx)
        sandbox.processes.append(proc)
        sandbox.function = profile.name
        inst = Instance(profile, proc.address_space, payload=sandbox)
        inst.degraded_start = degraded
        return inst

    # -- Groundhog-style rollback (§10) ------------------------------------------------------

    def _recycle(self, inst: Instance) -> Generator:
        if (self.config.sequential_isolation
                and self.config.mm_template
                and inst.function in self.templates):
            yield self._rollback_memory(inst)
        yield super()._recycle(inst)

    def _rollback_memory(self, inst: Instance) -> Generator:
        """Restore the instance's memory to the pristine template state.

        Drops every CoW page and re-attaches the template metadata — the
        "restore memory to a clean state before reuse" of Groundhog,
        made cheap by mm-templates.
        """
        from repro.mem.address_space import AddressSpace
        old_space = inst.space
        hook = old_space.on_local_delta
        old_space.destroy()
        fresh = AddressSpace(old_space.name, on_local_delta=hook)
        yield self.registry.mmt_attach(self.templates[inst.function], fresh,
                                       ctx=inst.obs_ctx)
        inst.space = fresh
        # Keep the process view coherent: swap the AS on the live proc.
        sandbox: ContainerSandbox = inst.payload
        for proc in sandbox.live_processes:
            if proc.address_space is old_space:
                proc.address_space = fresh

    # -- retirement: cleanse into the pool, don't destroy -----------------------------------

    def _retire(self, inst: Instance) -> Generator:
        inst.retired = True
        sandbox: ContainerSandbox = inst.payload
        if self.config.reconfig:
            yield self.repurposer.cleanse(sandbox)
            if not self.sandbox_pool.put(sandbox):
                yield self.runtime.destroy_sandbox(sandbox)
        else:
            yield self.runtime.destroy_sandbox(sandbox)

    # -- crash ---------------------------------------------------------------------------------

    def _on_crash(self) -> None:
        """A crashed node loses its repurposable sandboxes too."""
        self.sandbox_pool.clear()

    # -- stats --------------------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out.update({
            "sandbox_pool_hits": self.sandbox_pool.hits,
            "sandbox_pool_misses": self.sandbox_pool.misses,
            "sandbox_pool_size": len(self.sandbox_pool),
            "repurposes": self.repurposer.repurposes,
            "cleanses": self.repurposer.cleanses,
            "cold_creates": self.runtime.cold_creates,
            "pool_used_mb": self.pool.used_bytes / (1 << 20),
            "dedup_ratio": self.store.dedup_ratio,
            "degraded_acquires": self.degraded_acquires,
        })
        return out
