"""Applies a :class:`FaultPlan` to live pools/platforms on the virtual clock.

The injector schedules every planned event via ``Simulator.call_at`` when
armed, flips the target's health state when the event fires, and (when
the event carries a duration) schedules the matching recovery.  Every
application and recovery is appended to :attr:`log`, so two runs of the
same plan can assert identical fault timelines.

Targets are duck-typed: pool objects need the
``fail/recover/degrade/restore_speed/inject_timeouts/exhaust/replenish``
health API of :class:`repro.mem.pools.MemoryPool`; node crashes go
through a cluster's ``crash_node/recover_node`` (which re-dispatches
in-flight work) or directly through a platform's ``crash/recover``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.obs import hooks as obs_hooks
from repro.sim.engine import Simulator


class FaultInjector:
    """Arms a fault plan against a set of pools and hosts."""

    def __init__(self, sim: Simulator, plan: FaultPlan,
                 pools: Optional[Dict[str, object]] = None,
                 cluster: Optional[object] = None,
                 platforms: Sequence[object] = ()):
        self.sim = sim
        self.plan = plan
        self.pools: Dict[str, object] = dict(pools or {})
        self.cluster = cluster
        self.platforms = list(platforms)
        #: (time, action, target) triples, in application order.
        self.log: List[Tuple[float, str, str]] = []
        self.armed = False

    # -- constructors --------------------------------------------------------

    @classmethod
    def for_cluster(cls, cluster, plan: FaultPlan) -> "FaultInjector":
        pools: Dict[str, object] = {}
        for platform in cluster.platforms:
            pools.update(platform.pools)
        return cls(cluster.sim, plan, pools=pools, cluster=cluster,
                   platforms=cluster.platforms)

    @classmethod
    def for_platform(cls, platform, plan: FaultPlan) -> "FaultInjector":
        return cls(platform.node.sim, plan, pools=dict(platform.pools),
                   platforms=[platform])

    # -- arming --------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every planned event; idempotence guarded.

        Targets are validated eagerly so a typo'd pool or node name
        fails here, not minutes into a chaos run.
        """
        if self.armed:
            raise RuntimeError("fault injector already armed")
        for event in self.plan:
            if event.kind == FaultKind.NODE_CRASH:
                self._check_node(event.target)
            else:
                self._pool(event.target)
        self.armed = True
        for event in self.plan:
            when = max(event.time, self.sim.now)
            self.sim.call_at(when, lambda ev=event: self._apply(ev))
        return self

    # -- event application ---------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        self.log.append((self.sim.now, event.kind, event.target))
        if obs_hooks.active is not None:
            obs_hooks.active.on_fault_event(event.kind, event.target,
                                            self.sim.now)
        if event.kind == FaultKind.NODE_CRASH:
            self._crash_node(event.target)
            self._schedule_recovery(
                event, lambda: self._recover_node(event.target))
            return
        pool = self._pool(event.target)
        if event.kind == FaultKind.POOL_OFFLINE:
            pool.fail(reason="injected: offline/link-down")
            self._schedule_recovery(event, lambda: self._revert(
                event, pool.recover))
        elif event.kind == FaultKind.POOL_DEGRADE:
            pool.degrade(event.factor)
            self._schedule_recovery(event, lambda: self._revert(
                event, pool.restore_speed))
        elif event.kind == FaultKind.FETCH_TIMEOUT:
            pool.inject_timeouts(event.count)
        elif event.kind == FaultKind.POOL_EXHAUST:
            pool.exhaust()
            self._schedule_recovery(event, lambda: self._revert(
                event, pool.replenish))

    def _schedule_recovery(self, event: FaultEvent, fn) -> None:
        if event.duration is not None:
            self.sim.call_at(event.time + event.duration, fn)

    def _revert(self, event: FaultEvent, fn) -> None:
        self.log.append((self.sim.now, event.kind + "-end", event.target))
        if obs_hooks.active is not None:
            obs_hooks.active.on_fault_revert(event.kind + "-end",
                                             event.target, self.sim.now)
        fn()

    def _pool(self, name: str):
        pool = self.pools.get(name)
        if pool is None:
            raise KeyError(f"fault plan targets unknown pool {name!r}; "
                           f"known: {sorted(self.pools)}")
        return pool

    def _crash_node(self, name: str) -> None:
        if self.cluster is not None:
            self.cluster.crash_node(name)
            return
        self._platform(name).crash()

    def _recover_node(self, name: str) -> None:
        self.log.append((self.sim.now, FaultKind.NODE_CRASH + "-end", name))
        if obs_hooks.active is not None:
            obs_hooks.active.on_fault_revert(FaultKind.NODE_CRASH + "-end",
                                             name, self.sim.now)
        if self.cluster is not None:
            self.cluster.recover_node(name)
            return
        self._platform(name).recover()

    def _platform(self, node_name: str):
        for platform in self.platforms:
            if platform.node.name == node_name:
                return platform
        raise KeyError(f"fault plan targets unknown node {node_name!r}")

    def _check_node(self, node_name: str) -> None:
        if not any(p.node.name == node_name for p in self.platforms):
            known = sorted(p.node.name for p in self.platforms)
            raise KeyError(f"fault plan targets unknown node {node_name!r}; "
                           f"known: {known}")

    # -- reproducibility helpers ---------------------------------------------

    def timeline(self) -> Tuple[Tuple[float, str, str], ...]:
        """Immutable view of the applied-fault log."""
        return tuple(self.log)
