"""Fault injection and failure semantics for the disaggregated rack.

The paper's architecture concentrates state in a shared memory pool, so
pool and link failures become availability concerns the host must
survive (§8.1: fall back to local or NAS-based restore when remote
memory is unreachable).  This package provides:

* typed failure exceptions (:mod:`repro.faults.errors`) raised by pools
  and platforms;
* deterministic, seeded fault schedules (:class:`FaultPlan`);
* an injector that applies them on the virtual clock
  (:class:`FaultInjector`);
* the bounded-retry policy platforms use before degrading
  (:class:`RetryPolicy`).
"""

from repro.faults.errors import (FaultError, NodeCrashedError,
                                 PoolExhaustedError, PoolFault,
                                 PoolTimeoutError, PoolUnavailableError)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.retry import RetryPolicy

__all__ = [
    "FaultError", "NodeCrashedError", "PoolExhaustedError", "PoolFault",
    "PoolTimeoutError", "PoolUnavailableError", "FaultInjector",
    "FaultEvent", "FaultKind", "FaultPlan", "RetryPolicy",
]
