"""Deterministic fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent`s on the
virtual clock.  Plans are built explicitly (``plan.pool_offline(...)``)
or generated pseudo-randomly from a seed (:meth:`FaultPlan.chaos`);
either way the same inputs produce the same schedule, so every chaos run
is exactly reproducible: same seed → same fault times, kinds and counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.sim.rng import SeededRNG


class FaultKind:
    """Fault taxonomy for the disaggregated rack."""

    NODE_CRASH = "node-crash"        # host dies; optional recovery later
    POOL_OFFLINE = "pool-offline"    # CXL device offlined / RDMA link down
    POOL_DEGRADE = "pool-degrade"    # link congestion: fetches slow down
    FETCH_TIMEOUT = "fetch-timeout"  # next N fetches time out in transit
    POOL_EXHAUST = "pool-exhaust"    # capacity gone: allocations fail

    ALL = (NODE_CRASH, POOL_OFFLINE, POOL_DEGRADE, FETCH_TIMEOUT,
           POOL_EXHAUST)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    ``target`` is a pool name (pool faults) or a node name (crashes).
    ``duration`` of ``None`` means permanent (or, for FETCH_TIMEOUT,
    irrelevant — the burst self-clears as fetches consume it).
    """

    time: float
    kind: str
    target: str
    duration: Optional[float] = None
    factor: float = 1.0              # POOL_DEGRADE slowdown multiplier
    count: int = 0                   # FETCH_TIMEOUT burst size

    def __post_init__(self):
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"negative fault time: {self.time}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"non-positive fault duration: {self.duration}")
        if self.kind == FaultKind.POOL_DEGRADE and self.factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1: {self.factor}")
        if self.kind == FaultKind.FETCH_TIMEOUT and self.count <= 0:
            raise ValueError("fetch-timeout burst needs count > 0")


def _sort_key(event: FaultEvent) -> Tuple:
    return (event.time, event.kind, event.target)


class FaultPlan:
    """An immutable-by-convention, time-ordered fault schedule."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events: List[FaultEvent] = sorted(events, key=_sort_key)

    # -- building ------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        self._events.sort(key=_sort_key)
        return self

    def node_crash(self, time: float, node: str,
                   duration: Optional[float] = None) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.NODE_CRASH, node,
                                   duration=duration))

    def pool_offline(self, time: float, pool: str,
                     duration: Optional[float] = None) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.POOL_OFFLINE, pool,
                                   duration=duration))

    def link_flap(self, time: float, pool: str,
                  duration: float = 0.5) -> "FaultPlan":
        """Transient link loss: a short POOL_OFFLINE window."""
        return self.pool_offline(time, pool, duration=duration)

    def pool_degrade(self, time: float, pool: str, factor: float,
                     duration: Optional[float] = None) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.POOL_DEGRADE, pool,
                                   duration=duration, factor=factor))

    def fetch_timeouts(self, time: float, pool: str,
                       count: int) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.FETCH_TIMEOUT, pool,
                                   count=count))

    def pool_exhaust(self, time: float, pool: str,
                     duration: Optional[float] = None) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.POOL_EXHAUST, pool,
                                   duration=duration))

    # -- inspection ----------------------------------------------------------

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._events)

    @property
    def is_empty(self) -> bool:
        return not self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def signature(self) -> Tuple[Tuple, ...]:
        """Hashable fingerprint; equal signatures ⇒ identical schedules."""
        return tuple((e.time, e.kind, e.target, e.duration, e.factor,
                      e.count) for e in self._events)

    # -- seeded generation ---------------------------------------------------

    @classmethod
    def chaos(cls, seed: int, duration: float,
              pools: Sequence[str] = (),
              nodes: Sequence[str] = (),
              mean_interval: float = 60.0,
              mean_outage: float = 5.0,
              degrade_factor: float = 4.0,
              timeout_burst: int = 4) -> "FaultPlan":
        """A pseudo-random plan over ``[0, duration)``.

        Faults arrive as a Poisson process (mean ``mean_interval``
        seconds apart); each picks a kind/target uniformly from the
        menu.  The same ``(seed, arguments)`` always yields the same
        plan — :class:`~repro.sim.rng.SeededRNG` substreams guarantee it.
        """
        menu: List[Tuple[str, str]] = []
        for pool in pools:
            menu.extend([(FaultKind.POOL_OFFLINE, pool),
                         (FaultKind.POOL_DEGRADE, pool),
                         (FaultKind.FETCH_TIMEOUT, pool)])
        for node in nodes:
            menu.append((FaultKind.NODE_CRASH, node))
        if not menu:
            raise ValueError("chaos plan needs at least one pool or node")
        rng = SeededRNG(seed, "fault-plan")
        events: List[FaultEvent] = []
        t = 0.0
        while True:
            t += rng.exponential(mean_interval)
            if t >= duration:
                break
            kind, target = rng.choice(menu)
            outage = rng.exponential(mean_outage) + 1e-3
            if kind == FaultKind.FETCH_TIMEOUT:
                events.append(FaultEvent(t, kind, target,
                                         count=timeout_burst))
            elif kind == FaultKind.POOL_DEGRADE:
                events.append(FaultEvent(t, kind, target, duration=outage,
                                         factor=degrade_factor))
            else:
                events.append(FaultEvent(t, kind, target, duration=outage))
        return cls(events)
