"""Bounded-retry policy with exponential backoff.

Retries are simulated as :class:`~repro.sim.engine.Delay`s, so backoff
consumes virtual time (during which an injected flap may heal) without
burning CPU.  The policy is deliberately jitter-free: with one global
virtual clock, deterministic backoff keeps whole chaos runs bit-identical
for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How a platform retries a faulted pool operation before degrading.

    After ``max_retries`` failed attempts the platform drops down the
    degradation ladder (fallback pool, then local copy restore) instead
    of erroring the invocation.
    """

    max_retries: int = 2
    backoff_base: float = 1e-3      # first retry waits 1 ms
    backoff_multiplier: float = 4.0
    backoff_cap: float = 0.1        # never stall an invocation > 100 ms/try

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_multiplier < 1:
            raise ValueError("invalid backoff parameters")

    def backoff(self, attempt: int) -> float:
        """Wait before retry number ``attempt`` (0-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_multiplier ** attempt)
