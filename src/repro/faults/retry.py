"""Bounded-retry policy with exponential backoff and seeded jitter.

Retries are simulated as :class:`~repro.sim.engine.Delay`s, so backoff
consumes virtual time (during which an injected flap may heal) without
burning CPU.  Backoff is deterministic by default; optional jitter
(``jitter > 0``) de-synchronises retry storms, and every jitter draw
flows through the caller's :class:`~repro.sim.rng.SeededRNG` substream —
never module-level RNG state — so whole chaos runs stay bit-identical
for a given seed (two identical runs produce identical retry timelines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.rng import SeededRNG


@dataclass(frozen=True)
class RetryPolicy:
    """How a platform retries a faulted pool operation before degrading.

    After ``max_retries`` failed attempts the platform drops down the
    degradation ladder (fallback pool, then local copy restore) instead
    of erroring the invocation.

    ``jitter`` is the maximum fraction of the base backoff added as a
    uniform random spread: ``backoff(attempt, rng)`` waits
    ``base * (1 + U[0, jitter))`` (capped), with ``U`` drawn from the
    supplied seeded RNG.  With the default ``jitter == 0`` no draw is
    made at all, so existing seeded streams are untouched.
    """

    max_retries: int = 2
    backoff_base: float = 1e-3      # first retry waits 1 ms
    backoff_multiplier: float = 4.0
    backoff_cap: float = 0.1        # never stall an invocation > 100 ms/try
    jitter: float = 0.0             # max fractional spread per backoff

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_multiplier < 1:
            raise ValueError("invalid backoff parameters")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")

    def backoff(self, attempt: int,
                rng: Optional[SeededRNG] = None) -> float:
        """Wait before retry number ``attempt`` (0-based).

        ``rng`` is consulted only when ``jitter > 0``; passing one with
        ``jitter == 0`` is free (no state is consumed), so callers may
        always thread their substream through.
        """
        base = self.backoff_base * self.backoff_multiplier ** attempt
        if self.jitter > 0.0:
            if rng is None:
                raise ValueError(
                    "jittered backoff needs a seeded RNG substream")
            base *= 1.0 + rng.uniform(0.0, self.jitter)
        return min(self.backoff_cap, base)
