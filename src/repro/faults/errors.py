"""Typed failure exceptions shared across layers.

This module sits at the very bottom of the layer cake — it imports
nothing — so ``mem``, ``serverless`` and ``core`` can raise and catch the
same typed faults without upward dependencies.

The hierarchy mirrors the rack's failure domains (§8.1 discussion of
pool/link failures): pool-level faults (device offline, link down, fetch
timeout, capacity exhaustion) and node-level crashes.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for injected or modelled infrastructure failures."""


class PoolFault(FaultError):
    """A memory-pool operation failed (device offline, link down, timeout)."""

    def __init__(self, pool: str, reason: str = "fault"):
        super().__init__(f"pool {pool!r}: {reason}")
        self.pool = pool
        self.reason = reason


class PoolUnavailableError(PoolFault):
    """The pool is unreachable: CXL device offlined or RDMA link down."""


class PoolTimeoutError(PoolFault):
    """A demand fetch from the pool timed out in transit."""


class PoolExhaustedError(PoolFault, MemoryError):
    """Pool capacity exhausted.

    Also a :class:`MemoryError` so existing ``except MemoryError``
    degradation paths (e.g. registration falling back to copy-based
    restore) keep working unchanged.
    """


class NodeCrashedError(FaultError):
    """A host died; its warm state and in-flight invocations are lost."""

    def __init__(self, node: str):
        super().__init__(f"node {node!r} crashed")
        self.node = node


class DeadlineExceededError(FaultError):
    """An invocation overran a control-plane deadline and was aborted.

    Raised by the overload control plane (:mod:`repro.control`) when the
    per-invocation timeout fires; platforms treat it like a crash for
    cleanup purposes (drop the half-built instance) but dispatchers must
    *not* re-dispatch — the deadline covers every attempt.
    """

    def __init__(self, what: str, deadline: float):
        super().__init__(f"{what}: deadline {deadline:.6f} exceeded")
        self.what = what
        self.deadline = deadline


class AttemptTimeoutError(DeadlineExceededError):
    """One dispatch attempt overran its per-attempt timeout.

    A sub-deadline of :class:`DeadlineExceededError` (the timeout
    hierarchy: per-attempt < per-invocation): the dispatcher may retry
    on a different host, budget permitting, because only this attempt —
    not the whole invocation — is out of time.
    """
