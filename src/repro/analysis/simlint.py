"""The simlint driver: collect files, run rules, apply the baseline.

Entry points::

    python -m repro.cli lint                      # lint configured paths
    python -m repro.cli lint src/repro tests/foo  # explicit targets
    python -m repro.cli lint --deep               # + whole-program rules
    python -m repro.cli lint --deep --format sarif --out simlint.sarif
    python -m repro.cli lint --write-baseline     # acknowledge current hits
    python -m repro.cli lint --list-rules         # rule catalogue

``--deep`` additionally parses the whole program (``deep_paths`` from
``[tool.simlint]``), builds the project call graph, runs the
purity/effect and taint analyses, and evaluates the interprocedural
rules SIM006–SIM010 (see :mod:`repro.analysis.shardcheck`).  Deep
findings are acknowledged in a *separate* baseline file
(``deep_baseline``) so the per-file allowlist stays reviewable.

Exit status: 0 when every violation is baselined (or none exist),
1 when new violations are found, 2 on usage/config errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, TextIO

from repro.analysis import sarif
from repro.analysis.baseline import Baseline
from repro.analysis.config import SimlintConfig, load_config
from repro.analysis.rules import ParsedModule, Rule, Violation, all_rules


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors


def iter_python_files(root: Path, targets: Sequence[str]) -> List[Path]:
    """Resolve lint targets (files or directories) to sorted .py files."""
    files: List[Path] = []
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"lint target not found: {target}")
    seen: Dict[Path, None] = {}
    for path in files:
        seen.setdefault(path.resolve(), None)
    return list(seen)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_modules(files: Iterable[Path], root: Path, config: SimlintConfig,
                   report: LintReport) -> Dict[str, ParsedModule]:
    modules: Dict[str, ParsedModule] = {}
    for path in files:
        relpath = _relpath(path, root)
        if config.path_excluded(relpath):
            continue
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.parse_errors.append(f"{relpath}: syntax error: {exc}")
            continue
        except OSError as exc:
            report.parse_errors.append(f"{relpath}: unreadable: {exc}")
            continue
        modules[relpath] = ParsedModule(relpath=relpath, tree=tree,
                                        lines=source.splitlines())
        report.files_checked += 1
    return modules


def run_lint(root: Path, targets: Optional[Sequence[str]] = None,
             config: Optional[SimlintConfig] = None,
             baseline: Optional[Baseline] = None,
             rules: Optional[Sequence[Rule]] = None,
             deep: bool = False,
             deep_baseline: Optional[Baseline] = None) -> LintReport:
    """Lint ``targets`` under ``root``; returns the full report.

    With ``deep=True`` the whole program (``config.deep_paths``) is
    parsed in addition to ``targets`` and the interprocedural rules
    run over one shared :class:`~repro.analysis.shardcheck.DeepContext`.
    Deep findings are suppressed by ``deep_baseline`` (not the
    per-file baseline).
    """
    root = Path(root).resolve()
    config = config if config is not None else load_config(root)
    if baseline is None:
        baseline = Baseline.load(config.baseline_path)
    report = LintReport()
    files = iter_python_files(root, targets or config.paths)
    modules = _parse_modules(files, root, config, report)
    active = [rule for rule in (rules if rules is not None else all_rules())
              if config.rule_enabled(rule.rule_id)]
    raw: List[Violation] = []
    for rule in active:
        if rule.scope == "deep":
            continue
        if rule.scope == "project":
            raw.extend(rule.check_project(root, modules, config.tests_path))
            continue
        for relpath in modules:
            if config.path_excluded(relpath, rule.rule_id):
                continue
            raw.extend(rule.check_file(modules[relpath]))
    deep_raw: List[Violation] = []
    if deep:
        if deep_baseline is None:
            deep_baseline = Baseline.load(config.deep_baseline_path)
        deep_raw = _run_deep(root, config, active, report)
    raw.sort(key=lambda v: (v.relpath, v.line, v.col, v.rule_id))
    deep_raw.sort(key=lambda v: (v.relpath, v.line, v.col, v.rule_id))
    for violation in raw:
        if baseline.suppresses(violation):
            report.suppressed += 1
        else:
            report.violations.append(violation)
    for violation in deep_raw:
        if deep_baseline is not None and deep_baseline.suppresses(violation):
            report.suppressed += 1
        else:
            report.violations.append(violation)
    return report


def _run_deep(root: Path, config: SimlintConfig,
              active: Sequence[Rule], report: LintReport
              ) -> List[Violation]:
    """Parse ``config.deep_paths`` and evaluate the deep-scope rules."""
    from repro.analysis.shardcheck import build_deep_context

    deep_files = iter_python_files(root, config.deep_paths)
    # Parse into a scratch report: the whole-program pass may overlap
    # the per-file targets, and files_checked counts lint targets only.
    scratch = LintReport()
    modules = _parse_modules(deep_files, root, config, scratch)
    report.parse_errors.extend(scratch.parse_errors)
    context = build_deep_context(modules, config)
    out: List[Violation] = []
    for rule in active:
        if rule.scope != "deep":
            continue
        for violation in rule.check_deep(context):
            if not config.path_excluded(violation.relpath, rule.rule_id):
                out.append(violation)
    return out


def _print_summary(report: LintReport, out: TextIO) -> None:
    status = "clean" if report.clean else "FAILED"
    print(f"simlint: {report.files_checked} files, "
          f"{len(report.violations)} violations, "
          f"{report.suppressed} baselined — {status}", file=out)


def _print_report(report: LintReport, out: TextIO) -> None:
    for error in report.parse_errors:
        print(f"error: {error}", file=out)
    for violation in report.violations:
        print(violation.format(), file=out)
    _print_summary(report, out)


def _print_rules(out: TextIO) -> None:
    for rule in all_rules():
        print(f"{rule.rule_id}  {rule.title} [{rule.scope}]", file=out)
        print(f"    {rule.rationale}", file=out)


def main(argv: Optional[Sequence[str]] = None,
         out: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: determinism/accounting static analysis")
    parser.add_argument("targets", nargs="*",
                        help="files or directories (default: configured "
                             "[tool.simlint] paths)")
    parser.add_argument("--root", default=".",
                        help="repository root holding pyproject.toml")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: configured)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every violation, ignoring the baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="acknowledge current violations into the "
                             "baseline file(s) and exit 0")
    parser.add_argument("--deep", action="store_true",
                        help="also run the whole-program rules "
                             "(SIM006-SIM010) over the configured "
                             "deep_paths")
    parser.add_argument("--format", dest="fmt", default="text",
                        choices=("text", "json", "sarif"),
                        help="report format (default: text)")
    parser.add_argument("--out", default=None,
                        help="write the report to this file instead of "
                             "stdout (summary line still printed)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules(out)
        return 0

    root = Path(args.root).resolve()
    try:
        config = load_config(root)
        if args.baseline is not None:
            config.baseline = args.baseline
        baseline = (Baseline() if args.no_baseline
                    else Baseline.load(config.baseline_path))
        deep_baseline = (Baseline() if args.no_baseline
                         else Baseline.load(config.deep_baseline_path))
        report = run_lint(root, targets=args.targets or None, config=config,
                          baseline=baseline, deep=args.deep,
                          deep_baseline=deep_baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"simlint: error: {exc}", file=out)
        return 2

    if args.write_baseline:
        deep_ids = {rule.rule_id for rule in all_rules()
                    if rule.scope == "deep"}
        shallow = [v for v in report.violations if v.rule_id not in deep_ids]
        deep_hits = [v for v in report.violations if v.rule_id in deep_ids]
        baseline.save(config.baseline_path, shallow)
        print(f"simlint: baselined {len(shallow)} violations "
              f"into {config.baseline_path}", file=out)
        if args.deep:
            deep_baseline.save(config.deep_baseline_path, deep_hits)
            print(f"simlint: baselined {len(deep_hits)} deep violations "
                  f"into {config.deep_baseline_path}", file=out)
        return 0

    if args.fmt != "text":
        rules = [rule for rule in all_rules()
                 if config.rule_enabled(rule.rule_id)]
        if args.fmt == "json":
            payload = sarif.violations_to_json(report.violations)
        else:
            payload = sarif.violations_to_sarif(report.violations, rules)
        if args.out is not None:
            Path(args.out).write_text(payload, encoding="utf-8")
            _print_summary(report, out)
        else:
            out.write(payload)
            _print_summary(report, sys.stderr)
        return 0 if report.clean else 1

    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            _print_report(report, handle)
        _print_summary(report, out)
    else:
        _print_report(report, out)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
