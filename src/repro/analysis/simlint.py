"""The simlint driver: collect files, run rules, apply the baseline.

Entry points::

    python -m repro.cli lint                      # lint configured paths
    python -m repro.cli lint src/repro tests/foo  # explicit targets
    python -m repro.cli lint --write-baseline     # acknowledge current hits
    python -m repro.cli lint --list-rules         # rule catalogue

Exit status: 0 when every violation is baselined (or none exist),
1 when new violations are found, 2 on usage/config errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, TextIO

from repro.analysis.baseline import Baseline
from repro.analysis.config import SimlintConfig, load_config
from repro.analysis.rules import ParsedModule, Rule, Violation, all_rules


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors


def iter_python_files(root: Path, targets: Sequence[str]) -> List[Path]:
    """Resolve lint targets (files or directories) to sorted .py files."""
    files: List[Path] = []
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"lint target not found: {target}")
    seen: Dict[Path, None] = {}
    for path in files:
        seen.setdefault(path.resolve(), None)
    return list(seen)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_modules(files: Iterable[Path], root: Path, config: SimlintConfig,
                   report: LintReport) -> Dict[str, ParsedModule]:
    modules: Dict[str, ParsedModule] = {}
    for path in files:
        relpath = _relpath(path, root)
        if config.path_excluded(relpath):
            continue
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.parse_errors.append(f"{relpath}: syntax error: {exc}")
            continue
        except OSError as exc:
            report.parse_errors.append(f"{relpath}: unreadable: {exc}")
            continue
        modules[relpath] = ParsedModule(relpath=relpath, tree=tree,
                                        lines=source.splitlines())
        report.files_checked += 1
    return modules


def run_lint(root: Path, targets: Optional[Sequence[str]] = None,
             config: Optional[SimlintConfig] = None,
             baseline: Optional[Baseline] = None,
             rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint ``targets`` under ``root``; returns the full report."""
    root = Path(root).resolve()
    config = config if config is not None else load_config(root)
    if baseline is None:
        baseline = Baseline.load(config.baseline_path)
    report = LintReport()
    files = iter_python_files(root, targets or config.paths)
    modules = _parse_modules(files, root, config, report)
    active = [rule for rule in (rules if rules is not None else all_rules())
              if config.rule_enabled(rule.rule_id)]
    raw: List[Violation] = []
    for rule in active:
        if rule.scope == "project":
            raw.extend(rule.check_project(root, modules, config.tests_path))
            continue
        for relpath in modules:
            if config.path_excluded(relpath, rule.rule_id):
                continue
            raw.extend(rule.check_file(modules[relpath]))
    raw.sort(key=lambda v: (v.relpath, v.line, v.col, v.rule_id))
    for violation in raw:
        if baseline.suppresses(violation):
            report.suppressed += 1
        else:
            report.violations.append(violation)
    return report


def _print_report(report: LintReport, out: TextIO) -> None:
    for error in report.parse_errors:
        print(f"error: {error}", file=out)
    for violation in report.violations:
        print(violation.format(), file=out)
    status = "clean" if report.clean else "FAILED"
    print(f"simlint: {report.files_checked} files, "
          f"{len(report.violations)} violations, "
          f"{report.suppressed} baselined — {status}", file=out)


def _print_rules(out: TextIO) -> None:
    for rule in all_rules():
        print(f"{rule.rule_id}  {rule.title} [{rule.scope}]", file=out)
        print(f"    {rule.rationale}", file=out)


def main(argv: Optional[Sequence[str]] = None,
         out: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: determinism/accounting static analysis")
    parser.add_argument("targets", nargs="*",
                        help="files or directories (default: configured "
                             "[tool.simlint] paths)")
    parser.add_argument("--root", default=".",
                        help="repository root holding pyproject.toml")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: configured)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every violation, ignoring the baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="acknowledge current violations into the "
                             "baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules(out)
        return 0

    root = Path(args.root).resolve()
    try:
        config = load_config(root)
        if args.baseline is not None:
            config.baseline = args.baseline
        baseline = (Baseline() if args.no_baseline
                    else Baseline.load(config.baseline_path))
        report = run_lint(root, targets=args.targets or None, config=config,
                          baseline=baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"simlint: error: {exc}", file=out)
        return 2

    if args.write_baseline:
        baseline.save(config.baseline_path, report.violations)
        print(f"simlint: baselined {len(report.violations)} violations "
              f"into {config.baseline_path}", file=out)
        return 0

    _print_report(report, out)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
