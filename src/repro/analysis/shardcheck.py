"""Shard-safety certification: the interprocedural deep rules.

``python -m repro.cli lint --deep`` composes the call graph
(:mod:`repro.analysis.callgraph`), the purity/effect inference
(:mod:`repro.analysis.effects`) and the taint analysis
(:mod:`repro.analysis.dataflow`) into one :class:`DeepContext`, then
runs five whole-program rules over it:

* **SIM006** — shard-unsafe global mutable state: a module- or
  class-level mutable object written by code reachable from the
  simulation roots.  Two shards of a PDES run sharing one process
  would race on it, and no registry merge can reconstruct a canonical
  value.  A deterministic memo whose value is a pure function of its
  key may be declared safe with ``# simlint: shard-safe (reason)`` on
  the defining line.
* **SIM007** — non-associative merge on a ``merge``/``merge_from``
  path: the registry merge infrastructure assumes every merge is
  associative and commutative, so shard order cannot matter.  Plain
  overwrites of an accumulator with the other side's value, or
  subtraction/division folds, break that contract.
* **SIM008** — order-sensitive float accumulation over an unordered
  iterable: float addition is not associative, so ``total += x`` over
  a ``set`` gives bit-different sums per iteration order even though
  the *math* is order-free.
* **SIM009** — an obs/sanitizer hook invoked without the
  zero-cost-when-off guard (``if hooks.active is not None:`` or a
  guarded local alias): unguarded calls crash when no observer is
  installed and silently tax the hot path when one is.
* **SIM010** — interprocedural wall-clock/RNG/environ taint reaching a
  sim sink: the whole-program version of SIM001/SIM002, catching the
  helper-function indirection the per-file rules cannot see (the PR 6
  ``RetryPolicy`` jitter bug class).

All five respect ``[tool.simlint]`` per-rule excludes, flow through the
standard baseline machinery (deep findings land in ``deep_baseline``),
and are exercised positively and negatively by
``tests/analysis/test_deep_rules.py``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.config import SimlintConfig
from repro.analysis.dataflow import TaintAnalysis, analyze_taint
from repro.analysis.effects import (SHARD_SAFE_PRAGMA, EffectReport,
                                    infer_effects)
from repro.analysis.rules import (ParsedModule, Rule, Violation,
                                  _SetScope, _collect_set_bindings,
                                  _dotted_parts, _import_aliases, register)

#: Hook-slot modules whose ``active`` attribute must be guard-checked.
HOOK_MODULES = frozenset({"repro.analysis.hooks", "repro.obs.hooks"})


@dataclass
class DeepContext:
    """Everything the deep rules share, computed once per lint run."""

    modules: Dict[str, ParsedModule]
    config: SimlintConfig
    graph: CallGraph
    effects: EffectReport
    taint: TaintAnalysis
    sim_reachable: Set[str]
    roots: Tuple[str, ...]

    def module_for(self, relpath: str) -> Optional[ParsedModule]:
        return self.modules.get(relpath)


def build_deep_context(modules: Dict[str, ParsedModule],
                       config: SimlintConfig) -> DeepContext:
    """Compose call graph, effects and taint for one module set."""
    graph = build_callgraph(modules)
    effects = infer_effects(modules, graph)
    roots = tuple(config.deep_roots)
    taint = analyze_taint(modules, graph, roots)
    return DeepContext(modules=modules, config=config, graph=graph,
                       effects=effects, taint=taint,
                       sim_reachable=graph.reachable(roots), roots=roots)


class DeepRule(Rule):
    """Base for whole-program rules (scope ``deep``)."""

    scope = "deep"

    def _deep_violation(self, context: DeepContext, relpath: str,
                        line: int, col: int, message: str) -> Violation:
        module = context.module_for(relpath)
        snippet = module.snippet(line) if module is not None else ""
        return Violation(rule_id=self.rule_id, relpath=relpath, line=line,
                         col=col, message=message, snippet=snippet)


# -- SIM006: shard-unsafe global mutable state ---------------------------------


@register
class ShardUnsafeGlobalRule(DeepRule):
    rule_id = "SIM006"
    title = "shard-unsafe global mutable state"
    rationale = (
        "A module- or class-level mutable object written by code "
        "reachable from the simulation roots is shared across every "
        "shard a PDES run co-locates in one process: shards race on it "
        "and the registry merge cannot reconstruct a canonical value.  "
        "Make the state instance-owned, key it immutably, or — for a "
        "deterministic memo whose value is a pure function of its key — "
        "declare it with `# simlint: shard-safe (reason)` on the "
        "defining line.")

    def check_deep(self, context: DeepContext) -> Iterator[Violation]:
        for qualname in sorted(context.effects.shared):
            obj = context.effects.shared[qualname]
            if obj.shard_safe:
                continue
            writers = [a for a in context.effects.writers_of(qualname)
                       if a.function in context.sim_reachable]
            if not writers:
                continue
            writer = writers[0]
            chain = context.graph.call_chain(context.roots,
                                            writer.function)
            via = f" (via {' -> '.join(chain)})" if chain else ""
            yield self._deep_violation(
                context, obj.relpath, obj.line, 0,
                f"global mutable '{qualname}' is written by "
                f"sim-reachable {writer.function} at "
                f"{writer.relpath}:{writer.line}{via} — shard-unsafe; "
                f"make it instance-owned or mark the definition "
                f"`# {SHARD_SAFE_PRAGMA} (reason)`")


# -- SIM007: non-associative merge --------------------------------------------


_MERGE_NAMES = frozenset({"merge", "merge_from", "merge_into"})
_ORDER_FREE_COMBINES = frozenset({"max", "min", "union", "sorted"})
_NON_ASSOC_OPS = (ast.Sub, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _calls_in(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Call):
            parts = _dotted_parts(n.func)
            if parts:
                out.add(parts[-1])
    return out


@register
class NonAssociativeMergeRule(DeepRule):
    rule_id = "SIM007"
    title = "non-associative merge on a registry/merge_from path"
    rationale = (
        "Shard merging (obs registry, LogHistogram.merge_from, the "
        "sweep runner) relies on every merge being associative and "
        "commutative so shard order cannot change results.  Inside a "
        "merge/merge_from method, overwriting an accumulator with the "
        "other side's value, or folding with subtraction/division, "
        "makes A.merge(B) != B.merge(A).  Combine with +, max/min, "
        "or set union instead.")

    def check_deep(self, context: DeepContext) -> Iterator[Violation]:
        for qualname in sorted(context.graph.functions):
            info = context.graph.functions[qualname]
            if info.node.name not in _MERGE_NAMES or \
                    info.class_qualname is None:
                continue
            yield from self._check_merge(context, qualname)

    def _check_merge(self, context: DeepContext,
                     qualname: str) -> Iterator[Violation]:
        info = context.graph.functions[qualname]
        args = [a.arg for a in info.node.args.args]
        if len(args) < 2:
            return
        other = args[1]
        self_derived: Set[str] = {"self"}
        other_derived: Set[str] = {other}
        node: ast.AST
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                names = _names_in(node.value)
                target_name = node.targets[0].id
                if names & self_derived:
                    self_derived.add(target_name)
                elif names & other_derived:
                    other_derived.add(target_name)
        for node in ast.walk(info.node):
            if isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, _NON_ASSOC_OPS):
                if _names_in(node.value) & other_derived and \
                        self._is_self_target(node.target, self_derived):
                    yield self._deep_violation(
                        context, info.relpath, node.lineno,
                        node.col_offset,
                        f"{qualname} folds the other shard's value with "
                        f"a non-associative operator — merge order "
                        f"changes the result")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not self._is_self_target(target, self_derived):
                        continue
                    value_names = _names_in(node.value)
                    if not (value_names & other_derived):
                        continue
                    if value_names & self_derived:
                        continue
                    if _calls_in(node.value) & _ORDER_FREE_COMBINES:
                        continue
                    yield self._deep_violation(
                        context, info.relpath, node.lineno,
                        node.col_offset,
                        f"{qualname} overwrites an accumulator with the "
                        f"other shard's value — last merge wins, so "
                        f"shard order changes the result (combine with "
                        f"+=, max/min, or a histogram merge)")

    @staticmethod
    def _is_self_target(target: ast.expr, self_derived: Set[str]) -> bool:
        node: ast.expr = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id in self_derived


# -- SIM008: order-sensitive float accumulation --------------------------------


@register
class FloatAccumulationRule(DeepRule):
    rule_id = "SIM008"
    title = "order-sensitive float accumulation over an unordered iterable"
    rationale = (
        "Float addition is not associative: `total += x` over a set "
        "yields bit-different sums for different iteration orders even "
        "though the mathematical sum is order-free, so per-shard "
        "results cannot be replayed bit-identically.  Iterate "
        "sorted(...) (or accumulate integers) before folding floats.")

    def check_deep(self, context: DeepContext) -> Iterator[Violation]:
        for qualname in sorted(context.graph.functions):
            info = context.graph.functions[qualname]
            module = context.module_for(info.relpath)
            if module is None:
                continue
            scope = _SetScope()
            _collect_set_bindings(info.node.body, scope)
            float_names = self._float_accumulators(info.node)
            node: ast.AST
            for node in ast.walk(info.node):
                if not isinstance(node, ast.For) or \
                        not scope.is_set(node.iter):
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.AugAssign) and \
                            isinstance(sub.op, ast.Add) and \
                            isinstance(sub.target, ast.Name) and \
                            sub.target.id in float_names:
                        yield self._deep_violation(
                            context, info.relpath, sub.lineno,
                            sub.col_offset,
                            f"float accumulator '{sub.target.id}' is "
                            f"folded over an unordered set in "
                            f"{qualname} — float addition is not "
                            f"associative; iterate sorted(...)")

    @staticmethod
    def _float_accumulators(func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            is_float = (isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, float))
            if isinstance(node.value, ast.Call):
                parts = _dotted_parts(node.value.func)
                if parts == ["float"]:
                    is_float = True
            if not is_float:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names


# -- SIM009: unguarded hook call ----------------------------------------------


@register
class UnguardedHookRule(DeepRule):
    rule_id = "SIM009"
    title = "obs/sanitizer hook call without the zero-cost-when-off guard"
    rationale = (
        "Instrumented modules must guard every hook invocation with "
        "`if hooks.active is not None:` (or a checked local alias): "
        "`active` is None unless an observer/sanitizer is installed, "
        "so an unguarded call crashes the common case, and the guard "
        "is what keeps the disabled-path cost at one load + one `is` "
        "check.")

    def check_deep(self, context: DeepContext) -> Iterator[Violation]:
        for relpath in sorted(context.modules):
            module = context.modules[relpath]
            modname_locals = self._hook_locals(module)
            if not modname_locals:
                continue
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    yield from self._check_scope(
                        context, module, node.body, modname_locals)
                elif isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            yield from self._check_scope(
                                context, module, item.body,
                                modname_locals)

    @staticmethod
    def _hook_locals(module: ParsedModule) -> Set[str]:
        """Local names bound to a hook-slot module in this file."""
        return {name for name, target
                in _import_aliases(module.tree).items()
                if target in HOOK_MODULES}

    # A "hook expression" is `<mod>.active` (key "<mod>.active") or a
    # local alias assigned from it (key "<name>").  A call rooted at an
    # unguarded hook expression is a violation.

    def _check_scope(self, context: DeepContext, module: ParsedModule,
                     body: Sequence[ast.stmt],
                     hook_mods: Set[str]) -> Iterator[Violation]:
        aliases: Set[str] = set()
        yield from self._check_body(context, module, body, hook_mods,
                                    aliases, frozenset())

    def _active_key(self, node: ast.expr, hook_mods: Set[str],
                    aliases: Set[str]) -> Optional[str]:
        """Guard key if ``node`` denotes a hook slot, else None."""
        parts = _dotted_parts(node)
        if not parts:
            return None
        if len(parts) == 1 and parts[0] in aliases:
            return parts[0]
        if len(parts) == 2 and parts[0] in hook_mods and \
                parts[1] == "active":
            return f"{parts[0]}.active"
        return None

    def _guards_from_test(self, test: ast.expr, hook_mods: Set[str],
                          aliases: Set[str]
                          ) -> Tuple[Set[str], Set[str]]:
        """(guarded-if-true, guarded-if-false) hook keys in a test."""
        pos: Set[str] = set()
        neg: Set[str] = set()
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                p, _ = self._guards_from_test(value, hook_mods, aliases)
                pos |= p
            return pos, neg
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            p, n = self._guards_from_test(test.operand, hook_mods,
                                          aliases)
            return n, p
        if isinstance(test, ast.Compare) and len(test.ops) == 1 and \
                isinstance(test.comparators[0], ast.Constant) and \
                test.comparators[0].value is None:
            key = self._active_key(test.left, hook_mods, aliases)
            if key is not None:
                if isinstance(test.ops[0], ast.IsNot):
                    pos.add(key)
                elif isinstance(test.ops[0], ast.Is):
                    neg.add(key)
            return pos, neg
        key = self._active_key(test, hook_mods, aliases)
        if key is not None:
            pos.add(key)
        return pos, neg

    @staticmethod
    def _terminates(body: Sequence[ast.stmt]) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))

    def _check_body(self, context: DeepContext, module: ParsedModule,
                    body: Sequence[ast.stmt], hook_mods: Set[str],
                    aliases: Set[str], guarded: FrozenSet[str]
                    ) -> Iterator[Violation]:
        live: Set[str] = set(guarded)
        for stmt in body:
            if isinstance(stmt, ast.If):
                pos, neg = self._guards_from_test(stmt.test, hook_mods,
                                                 aliases)
                yield from self._check_expr(context, module, stmt.test,
                                            hook_mods, aliases, live)
                yield from self._check_body(
                    context, module, stmt.body, hook_mods, aliases,
                    frozenset(live | pos))
                yield from self._check_body(
                    context, module, stmt.orelse, hook_mods, aliases,
                    frozenset(live | neg))
                if self._terminates(stmt.body):
                    live |= neg
                if stmt.orelse and self._terminates(stmt.orelse):
                    live |= pos
                continue
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                value_key = self._active_key(stmt.value, hook_mods,
                                             aliases)
                live.discard(name)
                if value_key is not None:
                    aliases.add(name)
                    if value_key in live:
                        live.add(name)
                else:
                    aliases.discard(name)
                yield from self._check_expr(context, module, stmt.value,
                                            hook_mods, aliases, live)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield from self._check_expr(context, module, stmt.iter,
                                            hook_mods, aliases, live)
                yield from self._check_body(context, module, stmt.body,
                                            hook_mods, aliases,
                                            frozenset(live))
                yield from self._check_body(context, module, stmt.orelse,
                                            hook_mods, aliases,
                                            frozenset(live))
                continue
            if isinstance(stmt, ast.While):
                yield from self._check_expr(context, module, stmt.test,
                                            hook_mods, aliases, live)
                yield from self._check_body(context, module, stmt.body,
                                            hook_mods, aliases,
                                            frozenset(live))
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    yield from self._check_expr(
                        context, module, item.context_expr, hook_mods,
                        aliases, live)
                yield from self._check_body(context, module, stmt.body,
                                            hook_mods, aliases,
                                            frozenset(live))
                continue
            if isinstance(stmt, ast.Try):
                for part in (stmt.body, stmt.orelse, stmt.finalbody):
                    yield from self._check_body(context, module, part,
                                                hook_mods, aliases,
                                                frozenset(live))
                for handler in stmt.handlers:
                    yield from self._check_body(context, module,
                                                handler.body, hook_mods,
                                                aliases, frozenset(live))
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_body(context, module, stmt.body,
                                            hook_mods, aliases,
                                            frozenset(live))
                continue
            yield from self._check_expr(context, module, stmt, hook_mods,
                                        aliases, live)

    def _check_expr(self, context: DeepContext, module: ParsedModule,
                    node: ast.AST, hook_mods: Set[str],
                    aliases: Set[str], live: Set[str]
                    ) -> Iterator[Violation]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.IfExp):
                pos, _ = self._guards_from_test(sub.test, hook_mods,
                                                aliases)
                if pos:
                    # Guarded conditional value: body is safe under the
                    # test; check it separately and skip its subtree.
                    yield from self._check_expr(
                        context, module, sub.body, hook_mods, aliases,
                        live | pos)
                    yield from self._check_expr(
                        context, module, sub.orelse, hook_mods, aliases,
                        live)
                    yield from self._check_expr(
                        context, module, sub.test, hook_mods, aliases,
                        live)
                    return
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            parts = _dotted_parts(func)
            if not parts or len(parts) < 2:
                continue
            root_key: Optional[str] = None
            if parts[0] in aliases:
                root_key = parts[0]
            elif len(parts) >= 3 and parts[0] in hook_mods and \
                    parts[1] == "active":
                root_key = f"{parts[0]}.active"
            if root_key is None or root_key in live:
                continue
            yield self._deep_violation(
                context, module.relpath, sub.lineno, sub.col_offset,
                f"hook call through '{root_key}' without an "
                f"`is not None` guard — wrap it in "
                f"`if {root_key} is not None:` (zero-cost-when-off "
                f"contract)")


# -- SIM010: interprocedural nondeterminism reaching a sim sink ----------------


@register
class TaintReachesSimRule(DeepRule):
    rule_id = "SIM010"
    title = "interprocedural wall-clock/RNG/environ taint reaching a sim sink"
    rationale = (
        "The per-file rules (SIM001/SIM002) cannot see a helper whose "
        "*callers* are simulation code — exactly how the PR 6 "
        "RetryPolicy drew backoff jitter from module-level RNG state.  "
        "This rule propagates taint from every wall-clock, "
        "global-RNG and os.environ read over the project call graph "
        "and fires when the containing function is reachable from a "
        "simulation root, i.e. the nondeterminism can feed simulated "
        "time, metrics, or dispatch decisions.")

    def check_deep(self, context: DeepContext) -> Iterator[Violation]:
        for flow in context.taint.flows():
            source = flow.source
            yield self._deep_violation(
                context, source.relpath, source.line, source.col,
                f"{source.kind} source {source.detail} is reachable "
                f"from simulation code: {flow.render_chain()} — route "
                f"it through the virtual clock / a seeded substream, "
                f"or lift it out of the sim path")
