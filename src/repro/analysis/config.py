"""``[tool.simlint]`` configuration, read from ``pyproject.toml``.

Policy lives in configuration, not in rule code: the bench harness's
legitimate ``time.perf_counter`` use is expressed as a per-rule path
exclude here rather than a special case inside SIM001.

Recognised keys (all optional)::

    [tool.simlint]
    baseline = "simlint-baseline.txt"   # repo-relative allowlist file
    paths = ["src/repro"]               # default lint targets
    exclude = ["src/repro/vendored/*"]  # global path excludes (fnmatch)
    disable = ["SIM003"]                # rule ids to turn off entirely
    tests_path = "tests"                # where SIM005 looks for coverage

    # Interprocedural deep mode (`lint --deep`, rules SIM006-SIM010):
    deep_baseline = "simlint-deep-baseline.txt"  # deep-rule allowlist
    deep_paths = ["src/repro"]          # whole-program analysis scope
    deep_roots = ["repro.sim.engine.Simulator.run"]  # sim entry points

    [tool.simlint.per_rule.SIM001]
    exclude = ["src/repro/bench/*"]     # per-rule path excludes
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.9/3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: Default simulation entry points for deep-mode reachability: the
#: engine's event loop plus the serverless runners/cluster whose spawned
#: generators do the per-invocation work.  A prefix matches a whole
#: module or class.
DEFAULT_DEEP_ROOTS: Tuple[str, ...] = (
    "repro.sim.engine.Simulator.run",
    "repro.serverless.runner",
    "repro.serverless.cluster",
)


@dataclass
class SimlintConfig:
    """Resolved lint configuration for one repository root."""

    root: Path
    baseline: str = "simlint-baseline.txt"
    paths: Tuple[str, ...] = ("src/repro",)
    exclude: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()
    tests_path: str = "tests"
    per_rule_exclude: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Deep (interprocedural) mode: its own allowlist file, the paths
    #: forming the whole-program scope, and the simulation entry points
    #: reachability is anchored at (function qualnames or module/class
    #: qualname prefixes).
    deep_baseline: str = "simlint-deep-baseline.txt"
    deep_paths: Tuple[str, ...] = ("src/repro",)
    deep_roots: Tuple[str, ...] = DEFAULT_DEEP_ROOTS

    @property
    def baseline_path(self) -> Path:
        return self.root / self.baseline

    @property
    def deep_baseline_path(self) -> Path:
        return self.root / self.deep_baseline

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disable

    def path_excluded(self, relpath: str, rule_id: Optional[str] = None
                      ) -> bool:
        """Whether ``relpath`` (posix, repo-relative) is excluded."""
        patterns: List[str] = list(self.exclude)
        if rule_id is not None:
            patterns.extend(self.per_rule_exclude.get(rule_id, ()))
        return any(fnmatch.fnmatch(relpath, pat) for pat in patterns)


def _str_tuple(value: Any, key: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        raise ValueError(f"[tool.simlint] {key} must be a list of strings")
    out: List[str] = []
    for item in value:
        if not isinstance(item, str):
            raise ValueError(f"[tool.simlint] {key} entries must be strings")
        out.append(item)
    return tuple(out)


def _from_table(root: Path, table: Mapping[str, Any]) -> SimlintConfig:
    config = SimlintConfig(root=root)
    if "baseline" in table:
        config.baseline = str(table["baseline"])
    if "paths" in table:
        config.paths = _str_tuple(table["paths"], "paths")
    if "exclude" in table:
        config.exclude = _str_tuple(table["exclude"], "exclude")
    if "disable" in table:
        config.disable = _str_tuple(table["disable"], "disable")
    if "tests_path" in table:
        config.tests_path = str(table["tests_path"])
    if "deep_baseline" in table:
        config.deep_baseline = str(table["deep_baseline"])
    if "deep_paths" in table:
        config.deep_paths = _str_tuple(table["deep_paths"], "deep_paths")
    if "deep_roots" in table:
        config.deep_roots = _str_tuple(table["deep_roots"], "deep_roots")
    per_rule = table.get("per_rule", {})
    if not isinstance(per_rule, Mapping):
        raise ValueError("[tool.simlint.per_rule] must be a table")
    for rule_id, sub in per_rule.items():
        if not isinstance(sub, Mapping):
            raise ValueError(
                f"[tool.simlint.per_rule.{rule_id}] must be a table")
        if "exclude" in sub:
            config.per_rule_exclude[str(rule_id)] = _str_tuple(
                sub["exclude"], f"per_rule.{rule_id}.exclude")
    return config


def load_config(root: Path) -> SimlintConfig:
    """Load ``[tool.simlint]`` from ``root/pyproject.toml`` (or defaults)."""
    root = Path(root)
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return SimlintConfig(root=root)
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("simlint", {})
    if not isinstance(table, Mapping):
        raise ValueError("[tool.simlint] must be a table")
    return _from_table(root, table)
