"""simlint rule registry and the built-in rules.

Each rule owns an id (``SIM0xx``), a one-line title, and a rationale;
``docs/analysis.md`` documents all of them with examples.  File-scoped
rules see one parsed module at a time; project-scoped rules see every
parsed module plus the repository root (for cross-file checks such as
optflags test coverage); deep-scoped rules (SIM006–SIM010, defined in
:mod:`repro.analysis.shardcheck`) see a whole-program
:class:`~repro.analysis.shardcheck.DeepContext` — call graph, effect
inference, taint — and run only under ``lint --deep``.

The rules encode this reproduction's determinism contract:

* SIM001 — no wall-clock time outside the bench harness.
* SIM002 — no unseeded/global RNG: every random draw flows through
  :class:`repro.sim.rng.SeededRNG` or an explicitly seeded generator.
* SIM003 — no iteration over unordered ``set`` values where the order
  can leak into scheduling/eviction/dispatch decisions.
* SIM004 — no direct mutation of frame/charge state behind the
  accounting APIs (:mod:`repro.mem.accounting`, :mod:`repro.kernel.cgroup`).
* SIM005 — every :mod:`repro.optflags` flag's fast/slow path pair is
  exercised by at least one test.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence,
                    Set, Tuple, Type)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.shardcheck import DeepContext


@dataclass(frozen=True)
class Violation:
    """One rule hit, anchored to a source line."""

    rule_id: str
    relpath: str
    line: int
    col: int
    message: str
    snippet: str

    def format(self) -> str:
        return (f"{self.relpath}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")


@dataclass
class ParsedModule:
    """A parsed lint target: AST plus raw source lines."""

    relpath: str
    tree: ast.Module
    lines: Sequence[str]

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class: subclass, set metadata, implement a check method."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    scope: str = "file"           # "file" | "project" | "deep"

    def check_file(self, module: ParsedModule) -> Iterator[Violation]:
        return iter(())

    def check_project(self, root: Path, modules: Dict[str, ParsedModule],
                      tests_path: str) -> Iterator[Violation]:
        return iter(())

    def check_deep(self, context: "DeepContext") -> Iterator[Violation]:
        return iter(())

    def _violation(self, module: ParsedModule, node: ast.AST,
                   message: str) -> Violation:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(rule_id=self.rule_id, relpath=module.relpath,
                         line=lineno, col=col, message=message,
                         snippet=module.snippet(lineno))


REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    # The deep (interprocedural) rules live in repro.analysis.shardcheck
    # and register themselves on import; imported lazily here to keep
    # rules.py free of a circular dependency on the deep machinery.
    from repro.analysis import shardcheck  # noqa: F401
    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]


# -- shared AST helpers ------------------------------------------------------


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted path, from the module's imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(
                    ".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and \
                node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _canonical_call(node: ast.Call, aliases: Dict[str, str]
                    ) -> Optional[str]:
    """Canonical dotted path of a call target, resolving import aliases."""
    parts = _dotted_parts(node.func)
    if not parts:
        return None
    head = aliases.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])


# -- SIM001: wall-clock time --------------------------------------------------


@register
class WallClockRule(Rule):
    rule_id = "SIM001"
    title = "wall-clock time in simulated code"
    rationale = (
        "Simulated results must depend only on the virtual clock and the "
        "seeded RNG streams; host wall-clock reads make runs "
        "non-reproducible.  Bench-harness timing is configured via a "
        "[tool.simlint.per_rule.SIM001] path exclude, not a code special "
        "case.")

    BANNED = frozenset({
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns", "time.clock_gettime",
        "time.clock_gettime_ns", "time.sleep", "time.localtime",
        "time.gmtime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check_file(self, module: ParsedModule) -> Iterator[Violation]:
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, aliases)
            if canonical in self.BANNED:
                yield self._violation(
                    module, node,
                    f"wall-clock call {canonical}() — simulated code must "
                    f"use the virtual clock (Simulator.now)")


# -- SIM002: unseeded randomness ----------------------------------------------


@register
class UnseededRandomRule(Rule):
    rule_id = "SIM002"
    title = "unseeded / global-state RNG"
    rationale = (
        "The stdlib `random` module functions and `numpy.random.*` "
        "module-level functions draw from hidden global state, so results "
        "depend on import order and interpreter history.  Use "
        "repro.sim.rng.SeededRNG or numpy.random.default_rng(seed).")

    ALLOWED = frozenset({
        "random.Random", "random.SystemRandom",
        "numpy.random.default_rng", "numpy.random.Generator",
        "numpy.random.SeedSequence", "numpy.random.PCG64",
        "numpy.random.Philox",
    })

    def check_file(self, module: ParsedModule) -> Iterator[Violation]:
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, aliases)
            if canonical is None or canonical in self.ALLOWED:
                continue
            if canonical.startswith("random.") and canonical.count(".") == 1:
                yield self._violation(
                    module, node,
                    f"global-state RNG call {canonical}() — use a seeded "
                    f"generator (repro.sim.rng.SeededRNG)")
            elif canonical.startswith("numpy.random."):
                yield self._violation(
                    module, node,
                    f"numpy global RNG call {canonical}() — use "
                    f"numpy.random.default_rng(seed)")


# -- SIM003: unordered-set iteration ------------------------------------------


def _is_set_constructor(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in (
                "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                "MutableSet"):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in (
                "Set", "FrozenSet", "AbstractSet", "MutableSet"):
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str) \
                and "set" in sub.value.lower():
            return True
    return False


_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy"})

#: Calls through which set order cannot leak into results.
_ORDER_SAFE_CALLS = frozenset({
    "sorted", "len", "min", "max", "any", "all", "sum", "bool", "set",
    "frozenset", "id", "repr"})

#: Calls that materialise iteration order into an ordered value.
_ORDER_LEAK_CALLS = frozenset({
    "list", "tuple", "enumerate", "iter", "next", "map", "filter",
    "reversed", "zip"})


class _SetScope:
    """Names (and self-attributes) known to hold sets, per lexical scope."""

    def __init__(self) -> None:
        self.names: Set[str] = set()
        self.self_attrs: Set[str] = set()

    def is_set(self, node: ast.AST) -> bool:
        if _is_set_constructor(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return node.attr in self.self_attrs
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _SET_METHODS:
            return self.is_set(node.func.value)
        return False


_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
              ast.Lambda)


def _walk_same_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk ``body`` without descending into nested def/class scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _DEF_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _nested_defs(body: Sequence[ast.stmt]) -> List[ast.AST]:
    """Def/class nodes directly inside this scope (not through another)."""
    defs: List[ast.AST] = []
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _DEF_NODES):
            if not isinstance(node, ast.Lambda):
                defs.append(node)
            continue
        stack.extend(ast.iter_child_nodes(node))
    return defs


def _collect_set_bindings(body: Sequence[ast.stmt], scope: _SetScope) -> None:
    """Record set-typed assignments in one scope body.

    Two passes so ``a = set(); b = a`` marks ``b`` regardless of source
    order; nested function/class scopes are not descended into (their
    locals are their own), except that callers pre-collect ``self.X``
    bindings across a whole class body.
    """
    for _pass in range(2):
        before = (len(scope.names), len(scope.self_attrs))
        for node in _walk_same_scope(body):
            if isinstance(node, ast.Assign):
                if not (_is_set_constructor(node.value)
                        or scope.is_set(node.value)):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        scope.names.add(target.id)
                    elif isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        scope.self_attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign) and \
                    _annotation_is_set(node.annotation):
                if isinstance(node.target, ast.Name):
                    scope.names.add(node.target.id)
                elif isinstance(node.target, ast.Attribute) and \
                        isinstance(node.target.value, ast.Name) and \
                        node.target.value.id == "self":
                    scope.self_attrs.add(node.target.attr)
        if (len(scope.names), len(scope.self_attrs)) == before:
            break


@register
class UnorderedIterRule(Rule):
    rule_id = "SIM003"
    title = "iteration over an unordered set"
    rationale = (
        "Set iteration order depends on insertion history and (for str "
        "keys) the per-process hash seed; feeding it into scheduling, "
        "eviction or dispatch decisions silently breaks bit-identical "
        "replay.  Iterate sorted(...) or keep an insertion-ordered "
        "structure instead.  Order-insensitive reductions (len, min, max, "
        "sum, any, all, sorted, membership) are exempt.")

    def check_file(self, module: ParsedModule) -> Iterator[Violation]:
        yield from self._check_scope(module, module.tree.body, _SetScope(),
                                     class_scope=None)

    def _check_scope(self, module: ParsedModule, body: Sequence[ast.stmt],
                     outer: _SetScope,
                     class_scope: Optional[_SetScope]
                     ) -> Iterator[Violation]:
        scope = _SetScope()
        scope.names |= outer.names
        if class_scope is not None:
            scope.self_attrs |= class_scope.self_attrs
        _collect_set_bindings(body, scope)
        yield from self._flag_nodes(module, body, scope)
        # Recurse into nested def/class scopes found in this scope body.
        for child in _nested_defs(body):
            if isinstance(child, ast.ClassDef):
                cls_scope = _SetScope()
                for method in _nested_defs(child.body):
                    if isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        _collect_set_bindings(method.body, cls_scope)
                yield from self._check_scope(module, child.body, scope,
                                             class_scope=cls_scope)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(module, child.body, scope,
                                             class_scope=class_scope)

    def _flag_nodes(self, module: ParsedModule, body: Sequence[ast.stmt],
                    scope: _SetScope) -> Iterator[Violation]:
        # Comprehensions fed directly into an order-insensitive reduction
        # (sorted(f(x) for x in s), sum(...), ...) cannot leak set order.
        safe_comps: Set[int] = set()
        for node in _walk_same_scope(body):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in _ORDER_SAFE_CALLS:
                for arg in node.args:
                    if isinstance(arg, (ast.ListComp, ast.GeneratorExp,
                                        ast.SetComp)):
                        safe_comps.add(id(arg))
        for node in _walk_same_scope(body):
            if isinstance(node, ast.For) and scope.is_set(node.iter):
                yield self._violation(
                    module, node.iter,
                    "for-loop over an unordered set — iterate "
                    "sorted(...) or an insertion-ordered structure")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                if id(node) in safe_comps:
                    continue
                for gen in node.generators:
                    if scope.is_set(gen.iter):
                        yield self._violation(
                            module, gen.iter,
                            "comprehension over an unordered set leaks "
                            "iteration order — iterate sorted(...)")
            elif isinstance(node, ast.Call):
                yield from self._flag_call(module, node, scope)

    def _flag_call(self, module: ParsedModule, node: ast.Call,
                   scope: _SetScope) -> Iterator[Violation]:
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _ORDER_SAFE_CALLS or name not in _ORDER_LEAK_CALLS:
                return
            if node.args and scope.is_set(node.args[0]):
                yield self._violation(
                    module, node,
                    f"{name}() over an unordered set materialises "
                    f"arbitrary order — wrap in sorted(...)")
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr == "join":
            if node.args and scope.is_set(node.args[0]):
                yield self._violation(
                    module, node,
                    "str.join over an unordered set — wrap in sorted(...)")


# -- SIM004: accounting-API bypass --------------------------------------------


@register
class AccountingBypassRule(Rule):
    rule_id = "SIM004"
    title = "direct mutation of frame/charge state"
    rationale = (
        "Frame counts, byte charges and cgroup memberships are owned by "
        "their accounting APIs (MemoryAccountant.charge, "
        "AddressSpace._charge, MemoryPool.allocate_pages, "
        "CgroupManager.*); writing the underlying fields directly skips "
        "peak tracking, conservation checks and the sanitizer's ledgers, "
        "corrupting every reported number downstream.")

    #: attribute -> path suffix of the module allowed to touch it.
    PROTECTED: Dict[str, str] = {
        "current_bytes": "repro/mem/accounting.py",
        "peak_bytes": "repro/mem/accounting.py",
        "usage": "repro/mem/accounting.py",
        "cap_violations": "repro/mem/accounting.py",
        "local_pages": "repro/mem/address_space.py",
        "_stored_pages": "repro/mem/pools.py",
        "procs": "repro/kernel/cgroup.py",
    }

    MUTATORS = frozenset({
        "add", "discard", "remove", "clear", "update", "pop", "setdefault"})

    def _owned_here(self, attr: str, relpath: str) -> bool:
        return relpath.replace("\\", "/").endswith(self.PROTECTED[attr])

    def _protected_attr(self, node: ast.AST) -> Optional[ast.Attribute]:
        """The protected Attribute inside an assignment target, if any."""
        if isinstance(node, ast.Attribute) and node.attr in self.PROTECTED:
            return node
        if isinstance(node, ast.Subscript):
            return self._protected_attr(node.value)
        return None

    @staticmethod
    def _is_self_access(attr: ast.Attribute) -> bool:
        return isinstance(attr.value, ast.Name) and attr.value.id == "self"

    def check_file(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self.MUTATORS:
                owner = node.func.value
                if isinstance(owner, ast.Attribute) and \
                        owner.attr in self.PROTECTED and \
                        not self._is_self_access(owner) and \
                        not self._owned_here(owner.attr, module.relpath):
                    yield self._violation(
                        module, node,
                        f".{owner.attr}.{node.func.attr}() bypasses the "
                        f"accounting API owning '{owner.attr}' "
                        f"({self.PROTECTED[owner.attr]})")
                continue
            for target in targets:
                attr = self._protected_attr(target)
                if attr is None or self._is_self_access(attr):
                    continue
                if self._owned_here(attr.attr, module.relpath):
                    continue
                yield self._violation(
                    module, node,
                    f"direct write to .{attr.attr} bypasses the accounting "
                    f"API owning it ({self.PROTECTED[attr.attr]})")


# -- SIM005: optflags pairwise test coverage ----------------------------------


@register
class OptflagsCoverageRule(Rule):
    rule_id = "SIM005"
    title = "optflag fast/slow path pair untested"
    rationale = (
        "Every repro.optflags flag gates a fast path that must be "
        "bit-identical to its slow path; a flag no test exercises in BOTH "
        "states can silently drift.  The golden determinism tests use "
        "optflags.optimizations_disabled(), which toggles every "
        "registered flag pairwise.")

    scope = "project"

    @staticmethod
    def _flags_from_module(module: ParsedModule) -> List[Tuple[str, int]]:
        """(flag, lineno) pairs from the FLAGS registry tuple."""
        flags: List[Tuple[str, int]] = []
        registered: List[str] = []
        for node in module.tree.body:
            if isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name) and \
                    node.target.id == "FLAGS":
                value = node.value
            elif isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "FLAGS"
                    for t in node.targets):
                value = node.value
            else:
                continue
            if isinstance(value, (ast.Tuple, ast.List)):
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and \
                            isinstance(elt.value, str):
                        registered.append(elt.value)
        for node in module.tree.body:
            if isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name) and \
                    node.target.id in registered:
                flags.append((node.target.id, node.lineno))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id in registered:
                        flags.append((target.id, node.lineno))
        return flags

    def check_project(self, root: Path, modules: Dict[str, ParsedModule],
                      tests_path: str) -> Iterator[Violation]:
        optflags_mod: Optional[ParsedModule] = None
        for relpath in sorted(modules):
            normalized = relpath.replace("\\", "/")
            if normalized.endswith("repro/optflags.py") or \
                    Path(normalized).name == "optflags.py":
                optflags_mod = modules[relpath]
                break
        if optflags_mod is None:
            return
        flags = self._flags_from_module(optflags_mod)
        if not flags:
            return
        tests_dir = Path(root) / tests_path
        pairwise_all = False      # a test toggles every flag at once
        explicit: Dict[str, Set[bool]] = {flag: set() for flag, _ in flags}
        if tests_dir.is_dir():
            for test_file in sorted(tests_dir.rglob("*.py")):
                try:
                    source = test_file.read_text(encoding="utf-8")
                except OSError:
                    continue
                if "optimizations_disabled" in source:
                    pairwise_all = True
                self._explicit_toggles(source, explicit)
        for flag, lineno in flags:
            if pairwise_all or explicit[flag] == {True, False}:
                continue
            yield Violation(
                rule_id=self.rule_id, relpath=optflags_mod.relpath,
                line=lineno, col=0,
                message=(
                    f"optflag '{flag}' has no test exercising both its "
                    f"fast and slow paths — add one using "
                    f"optflags.optimizations_disabled()"),
                snippet=optflags_mod.snippet(lineno))

    @staticmethod
    def _explicit_toggles(source: str,
                          explicit: Dict[str, Set[bool]]) -> None:
        """Record `optflags.<flag> = True/False` assignments in tests."""
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            if not (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, bool)):
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and \
                        target.attr in explicit and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "optflags":
                    explicit[target.attr].add(node.value.value)
