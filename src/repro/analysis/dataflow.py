"""Interprocedural taint analysis: nondeterminism sources -> sim sinks.

A *source* is a call that injects host nondeterminism into whatever
computes around it:

* wall-clock reads (``time.time``, ``time.perf_counter``,
  ``datetime.now``, ... — the SIM001 set);
* hidden-global-state RNG (``random.random``, ``numpy.random.rand``,
  ... — the SIM002 set);
* process environment reads (``os.environ[...]``, ``os.environ.get``,
  ``os.getenv``).

The per-file rules already ban these inside ``src/repro`` — but only
file by file, which is how the PR 6 ``RetryPolicy`` jitter bug shipped:
the module-level RNG draw sat in a helper whose *callers* were
simulation code.  This pass closes the gap: a function containing a
source is **tainted**, taint propagates to every (transitive) caller
over the project call graph, and rule SIM010 fires when a tainted
function is reachable from a simulation root (``Simulator.run`` and
the serverless runners/cluster by default) — i.e. the nondeterminism
can flow into simulated time, metrics, or a dispatch decision.

Sink granularity is deliberately coarse (reachable-from-sim ==
feeds-a-sim-sink): every value computed by code the simulator executes
either influences virtual time, a recorded metric, or a scheduling
decision, or is dead.  Over-approximation is the correct failure mode
for a certifier.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.rules import (ParsedModule, UnseededRandomRule,
                                  WallClockRule, _canonical_call,
                                  _import_aliases)

#: Environment-read call targets (canonical dotted names).
_ENVIRON_CALLS = frozenset({
    "os.getenv", "os.environ.get", "os.environ.setdefault",
    "os.environb.get", "os.environ.items", "os.environ.keys",
    "os.environ.values",
})


@dataclass(frozen=True)
class TaintSource:
    """One nondeterminism source site inside a function."""

    function: str               # containing function qualname
    relpath: str
    line: int
    col: int
    kind: str                   # "wall-clock" | "global-rng" | "environ"
    detail: str                 # the offending canonical call


@dataclass(frozen=True)
class TaintedPath:
    """A source together with a call chain reaching it from a sim root."""

    source: TaintSource
    chain: Tuple[str, ...]      # root -> ... -> source.function

    def render_chain(self) -> str:
        return " -> ".join(self.chain)


def _environ_subscript(node: ast.AST, aliases: Dict[str, str]) -> bool:
    """``os.environ[...]`` reads (beyond the call forms)."""
    if not isinstance(node, ast.Subscript):
        return False
    parts: List[str] = []
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if not isinstance(value, ast.Name):
        return False
    parts.append(value.id)
    parts.reverse()
    head = aliases.get(parts[0], parts[0])
    return ".".join([head] + parts[1:]) in ("os.environ", "os.environb")


def scan_sources(modules: Dict[str, ParsedModule],
                 graph: CallGraph) -> List[TaintSource]:
    """Every nondeterminism source, attributed to its owning function."""
    wall = WallClockRule.BANNED
    rng_allowed = UnseededRandomRule.ALLOWED
    sources: List[TaintSource] = []
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        module = modules.get(info.relpath)
        if module is None:
            continue
        aliases = _import_aliases(module.tree)
        node: ast.AST
        for node in ast.walk(info.node):
            if isinstance(node, ast.Subscript) and \
                    _environ_subscript(node, aliases):
                sources.append(TaintSource(
                    function=qualname, relpath=info.relpath,
                    line=node.lineno, col=node.col_offset,
                    kind="environ", detail="os.environ[...]"))
                continue
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, aliases)
            if canonical is None:
                continue
            if canonical in wall:
                kind = "wall-clock"
            elif canonical in _ENVIRON_CALLS:
                kind = "environ"
            elif canonical in rng_allowed:
                continue
            elif (canonical.startswith("random.")
                  and canonical.count(".") == 1) or \
                    canonical.startswith("numpy.random."):
                kind = "global-rng"
            else:
                continue
            sources.append(TaintSource(
                function=qualname, relpath=info.relpath,
                line=node.lineno, col=node.col_offset, kind=kind,
                detail=canonical))
    return sources


class TaintAnalysis:
    """Propagated taint state over one call graph."""

    def __init__(self, modules: Dict[str, ParsedModule],
                 graph: CallGraph,
                 roots: Sequence[str]) -> None:
        self.graph = graph
        self.roots = tuple(roots)
        self.sources = scan_sources(modules, graph)
        self._reachable = graph.reachable(roots)
        #: function qualname -> sources it contains.
        self._by_function: Dict[str, List[TaintSource]] = {}
        for source in self.sources:
            self._by_function.setdefault(source.function, []).append(source)
        self.tainted = self._propagate()

    def _propagate(self) -> Set[str]:
        """Functions tainted directly or through any callee."""
        tainted: Set[str] = set(self._by_function)
        callers: Dict[str, List[str]] = {}
        for caller in self.graph.edges:
            for site in self.graph.edges[caller]:
                callers.setdefault(site.callee, []).append(caller)
        frontier = sorted(tainted)
        while frontier:
            nxt: List[str] = []
            for callee in frontier:
                for caller in callers.get(callee, []):
                    if caller not in tainted:
                        tainted.add(caller)
                        nxt.append(caller)
            frontier = sorted(nxt)
        return tainted

    def sim_reachable(self, qualname: str) -> bool:
        return qualname in self._reachable

    def flows(self) -> Iterator[TaintedPath]:
        """Source sites whose function simulation code can reach."""
        for source in self.sources:
            if source.function not in self._reachable:
                continue
            chain = self.graph.call_chain(self.roots, source.function)
            if chain is None:
                chain = [source.function]
            yield TaintedPath(source=source, chain=tuple(chain))


def analyze_taint(modules: Dict[str, ParsedModule], graph: CallGraph,
                  roots: Sequence[str]) -> TaintAnalysis:
    return TaintAnalysis(modules, graph, roots)
