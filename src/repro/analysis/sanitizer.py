"""Runtime kernel-invariant sanitizer (the kmemleak/KASAN analogue).

Opt-in checker for the simulated kernel's bookkeeping.  Instrumented
modules report state transitions through :mod:`repro.analysis.hooks`
(one ``is None`` check when disabled); an installed :class:`Sanitizer`
mirrors those reports into *shadow ledgers* and asserts, at every hook,
at explicit :meth:`~Sanitizer.check` barriers and at teardown, that the
simulator's own state still agrees with the ledger.  Because the ledger
is fed only by the accounting APIs, any code path that mutates frames,
charges or PTE state directly — bypassing those APIs — shows up as a
ledger/state divergence with a named invariant.

Invariants (each violation carries its invariant name):

``frame-refcount``
    Locally-resident page counts (``AddressSpace.local_pages``,
    ``ExtendedPageTable.local_pages``) equal the sum of charge deltas
    reported through ``_charge`` and never go negative — no leaked or
    double-freed frames.
``protected-page-write``
    A write-protected template page (``PTE_REMOTE_RO``) may only leave
    that state through a recorded CoW fault (or an explicit re-bind /
    populate API call).  The ledger tracks the expected RO population
    per VMA/EPT; a direct ``state[...] = PTE_LOCAL`` diverges.
``charge-conservation``
    Every :class:`~repro.mem.accounting.MemoryAccountant` conserves
    charge: the shadow sum of reported deltas equals ``current_bytes``,
    which equals the sum of the per-category breakdown.
``cgroup-membership``
    A cgroup's process set matches the membership implied by the timed
    API calls (``migrate``/``clone_into``/``remove_proc``) — no process
    appears in or vanishes from a cgroup without the kernel path.
``pool-capacity``
    Pool usage equals the pages handed out by ``allocate_pages`` and
    never exceeds capacity; a :class:`~repro.mem.pools.TieredPool`'s
    usage equals the sum of its tiers.
``event-monotonicity``
    The event queue never dispatches backwards in simulated time.
``page-cache-balance``
    Cached-page counts equal the sum of charge/evict deltas.

Usage::

    from repro.analysis.sanitizer import sanitized

    with sanitized() as san:
        run_simulation()
        san.check()          # optional mid-run barrier
    # teardown barrier ran on clean exit

or for test suites, set ``REPRO_SANITIZE=1`` and let ``tests/conftest.py``
wrap every test in a sanitizer automatically.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis import hooks
from repro.mem.address_space import PTE_REMOTE_RO
from repro.mem.cow import count_equal

INV_FRAME_REFCOUNT = "frame-refcount"
INV_PROTECTED_WRITE = "protected-page-write"
INV_CHARGE_CONSERVATION = "charge-conservation"
INV_CGROUP_MEMBERSHIP = "cgroup-membership"
INV_POOL_CAPACITY = "pool-capacity"
INV_EVENT_MONOTONICITY = "event-monotonicity"
INV_PAGE_CACHE_BALANCE = "page-cache-balance"

ENV_FLAG = "REPRO_SANITIZE"


def enabled_from_env() -> bool:
    """Whether the environment opts into sanitized runs."""
    return os.environ.get(ENV_FLAG, "") == "1"


@dataclass(frozen=True)
class InvariantViolation:
    """One detected divergence between shadow ledger and object state."""

    invariant: str
    subject: str
    detail: str

    def format(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.detail}"


class SanitizerError(AssertionError):
    """Raised at a barrier when any invariant has been violated."""

    def __init__(self, violations: List[InvariantViolation]):
        self.violations = list(violations)
        lines = [v.format() for v in self.violations]
        names = sorted({v.invariant for v in self.violations})
        super().__init__(
            f"sanitizer: {len(lines)} invariant violation(s) "
            f"({', '.join(names)}):\n  " + "\n  ".join(lines))


def _label(obj: Any, kind: str) -> str:
    name = getattr(obj, "name", "")
    return f"{kind}:{name}" if name else f"{kind}@{id(obj):#x}"


class Sanitizer:
    """Shadow-ledger invariant checker; install via :func:`sanitized`.

    Objects are registered lazily, the first time a hook reports on
    them; the ledger keeps a strong reference so barriers can re-read
    their state (sanitized runs trade memory for checking, like ASan).
    """

    def __init__(self) -> None:
        self.violations: List[InvariantViolation] = []
        self._seen: Set[Tuple[str, str, str]] = set()
        # id(obj) -> [obj, shadow]; strong refs keep ids stable.
        self._charges: Dict[int, List[Any]] = {}      # .local_pages owners
        self._ptes: Dict[int, List[Any]] = {}         # expected RO count
        self._accountants: Dict[int, List[Any]] = {}  # shadow bytes
        self._pools: Dict[int, List[Any]] = {}        # shadow pages
        self._cgroups: Dict[int, List[Any]] = {}      # shadow proc set
        self._caches: Dict[int, List[Any]] = {}       # shadow pages
        self._sims: Dict[int, List[Any]] = {}         # last dispatch time
        self.events_checked = 0
        self.barriers = 0

    # -- violation recording ---------------------------------------------------

    def _record(self, invariant: str, subject: str, detail: str) -> None:
        key = (invariant, subject, detail)
        if key in self._seen:
            return
        self._seen.add(key)
        self.violations.append(
            InvariantViolation(invariant=invariant, subject=subject,
                               detail=detail))

    # -- hooks: frame refcounts ------------------------------------------------

    def on_local_charge(self, owner: Any, delta_pages: int) -> None:
        """``_charge`` on an AddressSpace/ExtendedPageTable (post-op)."""
        entry = self._charges.get(id(owner))
        if entry is None:
            self._charges[id(owner)] = [owner, owner.local_pages]
            return
        entry[1] += delta_pages
        if entry[1] < 0:
            self._record(INV_FRAME_REFCOUNT, _label(owner, "space"),
                         f"shadow refcount went negative ({entry[1]}) — "
                         f"double free of {-delta_pages} pages")
        self._check_local_charge(entry)

    def _check_local_charge(self, entry: List[Any]) -> None:
        owner, shadow = entry
        actual = owner.local_pages
        if actual != shadow:
            self._record(
                INV_FRAME_REFCOUNT, _label(owner, "space"),
                f"local_pages={actual} but charge ledger says {shadow} "
                f"(direct mutation bypassing _charge?)")

    # -- hooks: PTE transitions ------------------------------------------------

    def on_pte_bound(self, owner: Any) -> None:
        """A (re)bind/populate API set the state array wholesale."""
        self._ptes[id(owner)] = [owner,
                                 count_equal(owner.state, PTE_REMOTE_RO)]

    def on_pte_cow(self, owner: Any, n_cow: int) -> None:
        """A fault handler CoW-converted ``n_cow`` RO pages (post-op)."""
        entry = self._ptes.get(id(owner))
        if entry is None:
            self._ptes[id(owner)] = [owner,
                                     count_equal(owner.state, PTE_REMOTE_RO)]
            return
        entry[1] -= n_cow
        self._check_pte(entry)

    def _check_pte(self, entry: List[Any]) -> None:
        owner, expected = entry
        actual = count_equal(owner.state, PTE_REMOTE_RO)
        if actual != expected:
            self._record(
                INV_PROTECTED_WRITE, _label(owner, "vma"),
                f"{expected} write-protected pages expected but {actual} "
                f"remain — a protected page changed state without a "
                f"recorded CoW fault")

    # -- hooks: accounting -----------------------------------------------------

    def on_accountant_charge(self, accountant: Any, category: str,
                             delta_bytes: int) -> None:
        entry = self._accountants.get(id(accountant))
        if entry is None:
            self._accountants[id(accountant)] = [accountant,
                                                 accountant.current_bytes]
            return
        entry[1] += delta_bytes
        self._check_accountant(entry)

    def _check_accountant(self, entry: List[Any]) -> None:
        accountant, shadow = entry
        subject = _label(accountant, "accountant")
        current = accountant.current_bytes
        if current != shadow:
            self._record(
                INV_CHARGE_CONSERVATION, subject,
                f"current_bytes={current} but charge ledger says {shadow}")
        by_category = sum(accountant.usage.values())
        if by_category != current:
            self._record(
                INV_CHARGE_CONSERVATION, subject,
                f"category breakdown sums to {by_category} but "
                f"current_bytes={current}")

    # -- hooks: pools ----------------------------------------------------------

    def on_pool_alloc(self, pool: Any, npages: int) -> None:
        entry = self._pools.get(id(pool))
        if entry is None:
            entry = self._pools[id(pool)] = [pool, pool.used_pages]
        else:
            entry[1] += npages
        self._check_pool(entry)

    def _check_pool(self, entry: List[Any]) -> None:
        pool, shadow = entry
        subject = _label(pool, "pool")
        if pool.used_pages != shadow:
            self._record(
                INV_POOL_CAPACITY, subject,
                f"used_pages={pool.used_pages} but allocation ledger says "
                f"{shadow}")
        if pool.used_bytes > pool.capacity_bytes:
            self._record(
                INV_POOL_CAPACITY, subject,
                f"used_bytes={pool.used_bytes} exceeds capacity "
                f"{pool.capacity_bytes}")
        hot = getattr(pool, "hot", None)
        cold = getattr(pool, "cold", None)
        if hot is not None and cold is not None:
            tier_sum = hot.used_pages + cold.used_pages
            if pool.used_pages != tier_sum:
                self._record(
                    INV_POOL_CAPACITY, subject,
                    f"tiered usage {pool.used_pages} != hot+cold "
                    f"{tier_sum}")

    # -- hooks: cgroups --------------------------------------------------------

    def on_cgroup_created(self, cgroup: Any) -> None:
        self._cgroups[id(cgroup)] = [cgroup, set(cgroup.procs)]

    def on_cgroup_proc(self, cgroup: Any, pid: int, added: bool) -> None:
        """A timed cgroup API added/removed ``pid`` (post-op)."""
        entry = self._cgroups.get(id(cgroup))
        if entry is None:
            self._cgroups[id(cgroup)] = [cgroup, set(cgroup.procs)]
            return
        shadow: Set[int] = entry[1]
        if added:
            shadow.add(pid)
        else:
            shadow.discard(pid)
        self._check_cgroup(entry)

    def _check_cgroup(self, entry: List[Any]) -> None:
        cgroup, shadow = entry
        if cgroup.procs != shadow:
            extra = sorted(cgroup.procs - shadow)
            missing = sorted(shadow - cgroup.procs)
            self._record(
                INV_CGROUP_MEMBERSHIP, _label(cgroup, "cgroup"),
                f"membership diverges from the migration ledger "
                f"(unaccounted={extra}, vanished={missing})")

    # -- hooks: page caches ----------------------------------------------------

    def on_page_cache_delta(self, cache: Any, delta_pages: int) -> None:
        entry = self._caches.get(id(cache))
        if entry is None:
            self._caches[id(cache)] = [cache, cache.cached_pages]
            return
        entry[1] += delta_pages
        self._check_cache(entry)

    def _check_cache(self, entry: List[Any]) -> None:
        cache, shadow = entry
        if cache.cached_pages != shadow:
            self._record(
                INV_PAGE_CACHE_BALANCE, _label(cache, "page-cache"),
                f"cached_pages={cache.cached_pages} but charge/evict "
                f"ledger says {shadow}")

    # -- hooks: event engine ---------------------------------------------------

    def on_sim_event(self, sim: Any, when: float) -> None:
        """The engine is about to dispatch an event at time ``when``."""
        self.events_checked += 1
        entry = self._sims.get(id(sim))
        if entry is None:
            self._sims[id(sim)] = [sim, when]
            return
        if when < entry[1]:
            self._record(
                INV_EVENT_MONOTONICITY, _label(sim, "sim"),
                f"event dispatched at t={when} after t={entry[1]} — "
                f"the queue went backwards")
        entry[1] = when

    # -- barriers --------------------------------------------------------------

    def scan(self) -> List[InvariantViolation]:
        """Re-verify every ledger against live state; returns violations."""
        for entry in self._charges.values():
            self._check_local_charge(entry)
        for entry in self._ptes.values():
            self._check_pte(entry)
        for entry in self._accountants.values():
            self._check_accountant(entry)
        for entry in self._pools.values():
            self._check_pool(entry)
        for entry in self._cgroups.values():
            self._check_cgroup(entry)
        for entry in self._caches.values():
            self._check_cache(entry)
        return self.violations

    def check(self) -> None:
        """Barrier: full ledger scan; raises on any recorded violation."""
        self.barriers += 1
        self.scan()
        if self.violations:
            raise SanitizerError(self.violations)


@contextmanager
def sanitized() -> Iterator[Sanitizer]:
    """Install a fresh sanitizer for the block; final barrier on exit.

    Nests: a previously installed sanitizer is restored afterwards.  The
    teardown barrier only runs when the block exits cleanly, so a test
    failure is not masked by a secondary sanitizer report.
    """
    sanitizer = Sanitizer()
    previous = hooks.install(sanitizer)
    try:
        yield sanitizer
        sanitizer.check()
    finally:
        hooks.uninstall(previous)


@contextmanager
def maybe_sanitized() -> Iterator[Optional[Sanitizer]]:
    """:func:`sanitized` gated on ``REPRO_SANITIZE=1`` (for conftest)."""
    if not enabled_from_env():
        yield None
        return
    with sanitized() as sanitizer:
        yield sanitizer
