"""Violation baselining (the lint allowlist).

A baseline entry acknowledges one existing violation so ``lint`` can
gate *new* problems without forcing an immediate fix of old ones.
Fingerprints are ``rule-id + path + hash(stripped source line)`` — no
line numbers — so unrelated edits that shift a file do not invalidate
the baseline, while editing the offending line itself does.

File format (one entry per line, ``#`` comments allowed)::

    SIM001 src/repro/legacy.py 1a2b3c4d5e6f  # time.time() in old path

An entry suppresses every violation in that file sharing the same rule
and source text (duplicates collapse — acceptable for an allowlist).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.rules import Violation


@dataclass(frozen=True)
class BaselineEntry:
    rule_id: str
    relpath: str
    digest: str

    def format(self, comment: str = "") -> str:
        line = f"{self.rule_id} {self.relpath} {self.digest}"
        if comment:
            line += f"  # {comment}"
        return line


def fingerprint(rule_id: str, relpath: str, source_line: str
                ) -> BaselineEntry:
    digest = hashlib.sha1(
        source_line.strip().encode("utf-8")).hexdigest()[:12]
    return BaselineEntry(rule_id=rule_id, relpath=relpath, digest=digest)


def fingerprint_violation(violation: "Violation") -> BaselineEntry:
    return fingerprint(violation.rule_id, violation.relpath,
                       violation.snippet)


class Baseline:
    """A set of acknowledged violations, loadable/savable as text."""

    HEADER = (
        "# simlint baseline — acknowledged violations.\n"
        "# Regenerate with: python -m repro.cli lint --write-baseline\n"
        "# Every entry must carry a trailing justification comment.\n")

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self._entries: Set[Tuple[str, str, str]] = {
            (e.rule_id, e.relpath, e.digest) for e in entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry: BaselineEntry) -> bool:
        return (entry.rule_id, entry.relpath, entry.digest) in self._entries

    def suppresses(self, violation: "Violation") -> bool:
        return fingerprint_violation(violation) in self

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        entries: List[BaselineEntry] = []
        for lineno, raw in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: malformed baseline entry {raw!r}")
            entries.append(BaselineEntry(*parts))
        return cls(entries)

    def save(self, path: Path,
             violations: Iterable["Violation"] = ()) -> None:
        """Write ``violations`` (plus existing entries) as the baseline."""
        entries = {(e[0], e[1], e[2]) for e in self._entries}
        comments = {}
        for violation in violations:
            entry = fingerprint_violation(violation)
            entries.add((entry.rule_id, entry.relpath, entry.digest))
            comments[(entry.rule_id, entry.relpath, entry.digest)] = (
                violation.snippet[:60])
        lines = [self.HEADER.rstrip("\n")]
        for rule_id, relpath, digest in sorted(entries):
            entry = BaselineEntry(rule_id, relpath, digest)
            lines.append(entry.format(
                comments.get((rule_id, relpath, digest), "")))
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
        self._entries = entries
