"""Structured output for simlint: plain JSON and SARIF 2.1.0.

SARIF (Static Analysis Results Interchange Format) is what code
hosts ingest for inline annotation; the CI ``lint-deep`` job uploads
the file as a build artifact.  The plain JSON form is a flat findings
list for ad-hoc tooling (jq, dashboards).

Both emitters are deterministic: rules and results are ordered the
same way the text reporter orders them, and no timestamps or
absolute paths are embedded, so two runs over the same tree produce
byte-identical output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.rules import Rule, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "simlint"


def violations_to_json(violations: Sequence[Violation]) -> str:
    """Flat findings list: one object per violation."""
    findings: List[Dict[str, Any]] = [
        {
            "rule": v.rule_id,
            "path": v.relpath,
            "line": v.line,
            "col": v.col,
            "message": v.message,
            "snippet": v.snippet,
        }
        for v in violations
    ]
    return json.dumps({"tool": TOOL_NAME, "findings": findings},
                      indent=2, sort_keys=True) + "\n"


def _sarif_rules(rules: Sequence[Rule]) -> List[Dict[str, Any]]:
    descriptors: List[Dict[str, Any]] = []
    for rule in sorted(rules, key=lambda r: r.rule_id):
        descriptors.append({
            "id": rule.rule_id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
            "properties": {"scope": rule.scope},
        })
    return descriptors


def violations_to_sarif(violations: Sequence[Violation],
                        rules: Sequence[Rule]) -> str:
    """SARIF 2.1.0 log with one run and per-rule metadata."""
    rule_index = {rule.rule_id: i
                  for i, rule in
                  enumerate(sorted(rules, key=lambda r: r.rule_id))}
    results: List[Dict[str, Any]] = []
    for v in violations:
        result: Dict[str, Any] = {
            "ruleId": v.rule_id,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": v.relpath.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": v.line,
                        "startColumn": v.col + 1,
                        "snippet": {"text": v.snippet},
                    },
                },
            }],
        }
        if v.rule_id in rule_index:
            result["ruleIndex"] = rule_index[v.rule_id]
        results.append(result)
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri":
                        "https://example.invalid/repro/docs/analysis.md",
                    "rules": _sarif_rules(rules),
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
