"""Sanitizer hook registry — deliberately dependency-free.

Instrumented modules (pools, address spaces, accounting, cgroups, the
event engine) import this module and guard every hook call with::

    if hooks.active is not None:
        hooks.active.on_something(...)

``active`` is ``None`` unless a :class:`repro.analysis.sanitizer.Sanitizer`
is installed, so the disabled path costs one global load and an ``is``
check — host-side only, never simulated time.  Keeping this module free
of imports avoids cycles: ``repro.mem`` and ``repro.sim`` may import it
without pulling in the sanitizer (which itself imports them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sanitizer import Sanitizer

#: The currently installed sanitizer, or None (the common case).
active: Optional["Sanitizer"] = None


def install(sanitizer: "Sanitizer") -> Optional["Sanitizer"]:
    """Install ``sanitizer`` as the active one; returns the previous."""
    global active
    previous = active
    active = sanitizer
    return previous


def uninstall(previous: Optional["Sanitizer"] = None) -> None:
    """Remove the active sanitizer, restoring ``previous`` (if any)."""
    global active
    active = previous
