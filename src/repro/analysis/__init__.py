"""Correctness tooling for the simulator: static lint + runtime sanitizer.

Two cooperating layers keep the reproduction's numbers trustworthy:

* :mod:`repro.analysis.simlint` — an AST-based static-analysis pass
  (``python -m repro.cli lint``) whose rules ban the constructs that
  silently break determinism or bypass accounting: wall-clock time and
  unseeded RNGs outside the bench harness, iteration over unordered
  ``set`` views in scheduling/eviction/dispatch paths, direct mutation
  of frame/charge state behind the accounting APIs, and optimization
  flags whose fast/slow path pair no test exercises.  ``lint --deep``
  goes whole-program: :mod:`repro.analysis.callgraph` builds a project
  call graph, :mod:`repro.analysis.effects` infers
  purity/reads-shared/writes-shared effects,
  :mod:`repro.analysis.dataflow` propagates nondeterminism taint, and
  :mod:`repro.analysis.shardcheck` certifies shard safety with rules
  SIM006–SIM010 (shared-state writes, non-associative merges,
  order-sensitive float folds, unguarded hook calls, taint reaching a
  sim sink).  :mod:`repro.analysis.sarif` renders findings as JSON or
  SARIF 2.1.0 for CI upload.

* :mod:`repro.analysis.sanitizer` — an opt-in runtime invariant checker
  (the kmemleak/KASAN analog) that hooks pool allocation, PTE
  transitions, and cgroup/accountant charge paths to assert, at
  configurable barriers and at teardown: frame refcount balance, no
  write to a write-protected template page without a CoW fault, charge
  conservation, tiered-pool capacity conservation, page-cache balance,
  and event-queue time monotonicity.

This ``__init__`` stays import-light on purpose: instrumented hot
modules (:mod:`repro.mem.pools`, :mod:`repro.sim.engine`, ...) import
only :mod:`repro.analysis.hooks`, which has no dependencies, so the
disabled-sanitizer cost is a single ``is None`` check per hook site.

See ``docs/analysis.md`` for the rule and invariant catalogue.
"""
