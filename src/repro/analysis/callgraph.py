"""Project call graph for simlint's interprocedural deep mode.

Builds, from the parsed modules alone (no imports, no execution), a
conservative static call graph over the repository:

* **module-level functions** resolve exactly through the per-module
  import/alias table (``from repro.workloads.cache import memoized``,
  ``import repro.mem.pools as pools``);
* **methods** resolve through ``self.``/``cls.`` against the enclosing
  class, its project-local ancestors *and* its subclasses (a call
  through the base may land in any override), and — for other
  receivers — through an attribute heuristic: a method name defined by
  only a few project classes resolves to all of them, while ubiquitous
  collection-protocol names (``add``, ``get``, ``append``, ...) are
  never guessed;
* **optflags-guarded dual paths**: call sites inside
  ``if optflags.<flag>:`` / ``else`` blocks carry a ``guard`` tag so
  downstream analyses know both branches belong to the graph and which
  flag selects them.

Nested functions, lambdas and comprehensions are attributed to their
enclosing top-level function or method: the nested ``dispatch`` closure
inside ``Cluster.run_workload`` is *part of* ``run_workload`` for
reachability purposes, which is exactly what shard-safety certification
needs (the closure runs iff its owner does).

The graph is deliberately *over*-approximate (extra edges, never
missing name-resolvable ones): deep rules use it for reachability, so
over-approximation yields false positives that a human can triage,
while under-approximation would silently certify unsafe code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.rules import ParsedModule, _dotted_parts, _import_aliases

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names never resolved by the attribute heuristic: they are the
#: built-in collection/stdlib protocol, so a bare ``x.get(...)`` is far
#: more likely a dict than any project class.
_COMMON_METHODS = frozenset({
    "add", "append", "clear", "copy", "count", "discard", "extend",
    "format", "get", "index", "insert", "items", "join", "keys", "lower",
    "move_to_end", "pop", "popitem", "read", "remove", "replace",
    "setdefault", "sort", "split", "strip", "update", "upper", "values",
    "write", "startswith", "endswith", "encode", "decode",
})

#: Attribute-heuristic fan-out cap: a method name defined by more
#: project classes than this is too ambiguous to resolve.
_ATTR_FANOUT_CAP = 8


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/mem/pools.py`` -> ``repro.mem.pools``;
    ``tests/sim/test_engine.py`` -> ``tests.sim.test_engine``;
    a package ``__init__.py`` maps to the package name itself.
    """
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One top-level function or method (nested defs fold into it)."""

    qualname: str                       # repro.mem.pools.TieredPool.fetch
    module: str                         # repro.mem.pools
    relpath: str
    node: FunctionNode
    class_qualname: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class: resolved project-local bases plus its method table."""

    qualname: str
    module: str
    relpath: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored to the call expression."""

    caller: str
    callee: str
    relpath: str
    line: int
    col: int
    #: ``(flag_name, branch)`` when the call sits inside an
    #: ``if optflags.<flag>:`` dual path; None otherwise.
    guard: Optional[Tuple[str, bool]] = None


class CallGraph:
    """The resolved whole-program call graph plus its symbol tables."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> outgoing call sites (sorted at finalise).
        self.edges: Dict[str, List[CallSite]] = {}
        #: local import alias table per module name.
        self.aliases: Dict[str, Dict[str, str]] = {}
        #: method name -> sorted class qualnames defining it.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: class qualname -> sorted direct subclass qualnames.
        self.subclasses: Dict[str, List[str]] = {}

    # -- queries ---------------------------------------------------------------

    def callees(self, qualname: str) -> List[CallSite]:
        return self.edges.get(qualname, [])

    def resolve_roots(self, roots: Sequence[str]) -> List[str]:
        """Expand root specs (function qualnames or module/class
        prefixes) into the concrete functions they denote."""
        out: Set[str] = set()
        for spec in roots:
            if spec in self.functions:
                out.add(spec)
                continue
            prefix = spec + "."
            for qualname in self.functions:
                if qualname.startswith(prefix):
                    out.add(qualname)
        return sorted(out)

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Function qualnames reachable from ``roots`` (roots included)."""
        frontier = self.resolve_roots(roots)
        seen: Set[str] = set(frontier)
        while frontier:
            nxt: List[str] = []
            for caller in frontier:
                for site in self.edges.get(caller, []):
                    if site.callee not in seen and \
                            site.callee in self.functions:
                        seen.add(site.callee)
                        nxt.append(site.callee)
            frontier = nxt
        return seen

    def call_chain(self, roots: Sequence[str], target: str
                   ) -> Optional[List[str]]:
        """A shortest root->...->target qualname chain, or None.

        BFS over sorted edges, so the reported chain is deterministic.
        """
        frontier = self.resolve_roots(roots)
        parent: Dict[str, Optional[str]] = {q: None for q in frontier}
        while frontier:
            nxt: List[str] = []
            for caller in frontier:
                if caller == target:
                    chain: List[str] = []
                    at: Optional[str] = caller
                    while at is not None:
                        chain.append(at)
                        at = parent[at]
                    chain.reverse()
                    return chain
                for site in self.edges.get(caller, []):
                    if site.callee in self.functions and \
                            site.callee not in parent:
                        parent[site.callee] = caller
                        nxt.append(site.callee)
            frontier = sorted(set(nxt))
        return None


# -- construction --------------------------------------------------------------


def _base_qualname(node: ast.expr, module: str,
                   aliases: Dict[str, str],
                   local_classes: Dict[str, str]) -> Optional[str]:
    """Resolve a base-class expression to a project class qualname."""
    parts = _dotted_parts(node)
    if not parts:
        return None
    if len(parts) == 1 and parts[0] in local_classes:
        return local_classes[parts[0]]
    head = aliases.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])


class _GuardTracker:
    """Tracks the innermost ``if optflags.<flag>:`` guard while walking."""

    def __init__(self, optflag_locals: Set[str]) -> None:
        self._optflag_locals = optflag_locals

    def flag_of(self, test: ast.expr) -> Optional[str]:
        """``optflags.<flag>`` (or ``not`` of it) -> flag name."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self.flag_of(test.operand)
        if isinstance(test, ast.Attribute) and \
                isinstance(test.value, ast.Name) and \
                test.value.id in self._optflag_locals:
            return test.attr
        return None


def _walk_with_guard(body: Sequence[ast.stmt], tracker: _GuardTracker,
                     guard: Optional[Tuple[str, bool]]
                     ) -> Iterator[Tuple[ast.AST, Optional[Tuple[str, bool]]]]:
    """Yield ``(node, guard)`` for every node under ``body``.

    Descends into nested defs (their calls belong to the enclosing
    function) and annotates nodes inside ``if optflags.x:`` branches.
    """
    for stmt in body:
        if isinstance(stmt, ast.If):
            flag = tracker.flag_of(stmt.test)
            yield stmt.test, guard
            if flag is not None:
                negated = isinstance(stmt.test, ast.UnaryOp)
                yield from _walk_with_guard(stmt.body, tracker,
                                            (flag, not negated))
                yield from _walk_with_guard(stmt.orelse, tracker,
                                            (flag, negated))
            else:
                yield from _walk_with_guard(stmt.body, tracker, guard)
                yield from _walk_with_guard(stmt.orelse, tracker, guard)
            continue
        yield stmt, guard
        for child in ast.walk(stmt):
            if child is stmt:
                continue
            yield child, guard


class CallGraphBuilder:
    """Two-phase builder: collect symbols, then resolve call sites."""

    def __init__(self, modules: Dict[str, ParsedModule]) -> None:
        self._modules = modules
        self.graph = CallGraph()
        #: module name -> {local name -> function qualname}
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        #: module name -> {local name -> class qualname}
        self._module_classes: Dict[str, Dict[str, str]] = {}

    def build(self) -> CallGraph:
        for relpath in sorted(self._modules):
            self._collect(relpath, self._modules[relpath])
        self._link_hierarchy()
        for relpath in sorted(self._modules):
            self._resolve_module(relpath, self._modules[relpath])
        for caller in self.graph.edges:
            self.graph.edges[caller].sort(
                key=lambda s: (s.line, s.col, s.callee))
        return self.graph

    # -- phase 1: symbols ------------------------------------------------------

    def _collect(self, relpath: str, module: ParsedModule) -> None:
        modname = module_name_for(relpath)
        graph = self.graph
        graph.aliases[modname] = _import_aliases(module.tree)
        funcs = self._module_funcs.setdefault(modname, {})
        classes = self._module_classes.setdefault(modname, {})
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{modname}.{node.name}"
                graph.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=modname, relpath=relpath,
                    node=node)
                funcs[node.name] = qualname
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{modname}.{node.name}"
                info = ClassInfo(qualname=cls_qual, module=modname,
                                 relpath=relpath, node=node)
                graph.classes[cls_qual] = info
                classes[node.name] = cls_qual
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        m_qual = f"{cls_qual}.{item.name}"
                        graph.functions[m_qual] = FunctionInfo(
                            qualname=m_qual, module=modname,
                            relpath=relpath, node=item,
                            class_qualname=cls_qual)
                        info.methods[item.name] = m_qual

    def _link_hierarchy(self) -> None:
        graph = self.graph
        for cls_qual in sorted(graph.classes):
            info = graph.classes[cls_qual]
            aliases = graph.aliases.get(info.module, {})
            local = self._module_classes.get(info.module, {})
            for base in info.node.bases:
                resolved = _base_qualname(base, info.module, aliases, local)
                if resolved is not None and resolved in graph.classes:
                    info.bases.append(resolved)
                    graph.subclasses.setdefault(resolved, []).append(
                        cls_qual)
        for name in graph.subclasses:
            graph.subclasses[name].sort()
        by_name: Dict[str, List[str]] = {}
        for cls_qual in sorted(graph.classes):
            for method in graph.classes[cls_qual].methods:
                by_name.setdefault(method, []).append(cls_qual)
        graph.methods_by_name = by_name

    # -- phase 2: call resolution ----------------------------------------------

    def _mro(self, cls_qual: str) -> List[str]:
        """The class plus project-local ancestors, breadth-first."""
        out: List[str] = []
        frontier = [cls_qual]
        seen: Set[str] = set(frontier)
        while frontier:
            nxt: List[str] = []
            for name in frontier:
                out.append(name)
                for base in self.graph.classes[name].bases:
                    if base in self.graph.classes and base not in seen:
                        seen.add(base)
                        nxt.append(base)
            frontier = nxt
        return out

    def _descendants(self, cls_qual: str) -> List[str]:
        out: List[str] = []
        frontier = self.graph.subclasses.get(cls_qual, [])
        seen: Set[str] = set(frontier)
        while frontier:
            nxt: List[str] = []
            for name in frontier:
                out.append(name)
                for sub in self.graph.subclasses.get(name, []):
                    if sub not in seen:
                        seen.add(sub)
                        nxt.append(sub)
            frontier = nxt
        return out

    def _method_targets(self, cls_qual: str, method: str) -> List[str]:
        """Resolve ``self.method()``: own class, ancestors, overrides."""
        targets: List[str] = []
        for name in self._mro(cls_qual):
            qual = self.graph.classes[name].methods.get(method)
            if qual is not None:
                targets.append(qual)
                break           # first hit up the hierarchy == static MRO
        for name in self._descendants(cls_qual):
            qual = self.graph.classes[name].methods.get(method)
            if qual is not None:
                targets.append(qual)
        return targets

    def _class_targets(self, cls_qual: str) -> List[str]:
        """Constructor edge for ``SomeClass(...)``."""
        for name in self._mro(cls_qual):
            init = self.graph.classes[name].methods.get("__init__")
            if init is not None:
                return [init]
        return []

    def _attr_targets(self, method: str) -> List[str]:
        """The attribute heuristic for unknown receivers."""
        if method in _COMMON_METHODS:
            return []
        owners = self.graph.methods_by_name.get(method, [])
        if not owners or len(owners) > _ATTR_FANOUT_CAP:
            return []
        out: List[str] = []
        for cls_qual in owners:
            out.append(self.graph.classes[cls_qual].methods[method])
        return out

    def _resolve_module(self, relpath: str, module: ParsedModule) -> None:
        modname = module_name_for(relpath)
        aliases = self.graph.aliases[modname]
        optflag_locals = {name for name, target in aliases.items()
                          if target == "repro.optflags"}
        optflag_locals.add("optflags")
        tracker = _GuardTracker(optflag_locals)
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            if info.module != modname or info.relpath != relpath:
                continue
            self._resolve_function(info, aliases, tracker)

    def _resolve_function(self, info: FunctionInfo,
                          aliases: Dict[str, str],
                          tracker: _GuardTracker) -> None:
        edges = self.graph.edges.setdefault(info.qualname, [])
        for node, guard in _walk_with_guard(info.node.body, tracker, None):
            if not isinstance(node, ast.Call):
                continue
            for callee in self._call_targets(node, info, aliases):
                edges.append(CallSite(
                    caller=info.qualname, callee=callee,
                    relpath=info.relpath, line=node.lineno,
                    col=node.col_offset, guard=guard))

    def _call_targets(self, node: ast.Call, info: FunctionInfo,
                      aliases: Dict[str, str]) -> List[str]:
        graph = self.graph
        funcs = self._module_funcs.get(info.module, {})
        classes = self._module_classes.get(info.module, {})
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in funcs:
                return [funcs[name]]
            if name in classes:
                return self._class_targets(classes[name])
            target = aliases.get(name)
            if target is not None:
                if target in graph.functions:
                    return [target]
                if target in graph.classes:
                    return self._class_targets(target)
            return []
        parts = _dotted_parts(func)
        if parts is None:
            # e.g. ``foo()()`` or ``d[k]()`` — dynamic, unresolvable.
            return []
        if parts[0] in ("self", "cls") and len(parts) == 2 and \
                info.class_qualname is not None:
            return self._method_targets(info.class_qualname, parts[1])
        head = aliases.get(parts[0], parts[0])
        dotted = ".".join([head] + parts[1:])
        if dotted in graph.functions:
            return [dotted]
        owner = ".".join([head] + parts[1:-1])
        if owner in graph.classes:
            # Explicit Class.method(...) or module.Class(...) chains.
            for name in self._mro(owner):
                qual = graph.classes[name].methods.get(parts[-1])
                if qual is not None:
                    return [qual]
            return []
        if len(parts) == 2 and parts[0] in classes:
            for name in self._mro(classes[parts[0]]):
                qual = graph.classes[name].methods.get(parts[1])
                if qual is not None:
                    return [qual]
            return []
        return self._attr_targets(parts[-1])


def build_callgraph(modules: Dict[str, ParsedModule]) -> CallGraph:
    """Build the project call graph over ``modules`` (relpath-keyed)."""
    return CallGraphBuilder(modules).build()
