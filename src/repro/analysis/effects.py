"""Purity / effect inference over the project call graph.

Classifies every function into a three-point lattice::

    PURE  <  READS_SHARED  <  WRITES_SHARED

where *shared state* means module-level mutable objects (dicts, lists,
sets, ``OrderedDict``/``defaultdict``/``deque`` instances, ...) and
class-level mutable attributes — exactly the state a sharded PDES run
cannot allow simulation code to touch, because two shards in one
process would race on it and a merge could not reconstruct a canonical
value.

Direct effects are syntactic:

* ``global x`` + assignment, or a subscript/attribute store whose base
  resolves to a shared object, or a mutator-method call on one
  (``.update``, ``.append``, ``.pop``, ...) — **writes**;
* any other load of a shared object — **reads**;
* neither — **pure**.

Two interprocedural refinements close the gaps a per-file pass cannot
see:

* **parameter mutation**: a function that subscript-stores or calls a
  mutator on one of its parameters marks that position; a caller
  passing a shared object in a mutated position *writes* it (this is
  how ``workloads.cache.memoized(cache, key, build)`` taints its
  callers), propagated to a fixpoint through call chains;
* **transitive effects**: a function's final effect is the maximum of
  its own and all callees', iterated to a fixpoint over the call graph.

Shared objects can be declared shard-safe with a pragma comment on the
defining line (``# simlint: shard-safe (reason)``); the certifier
(SIM006) honours it, this module still records the accesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (CallGraph, FunctionInfo,
                                      module_name_for)
from repro.analysis.rules import ParsedModule, _dotted_parts

#: Effect lattice values, ordered.
PURE = 0
READS_SHARED = 1
WRITES_SHARED = 2

EFFECT_NAMES = {PURE: "pure", READS_SHARED: "reads-shared",
                WRITES_SHARED: "writes-shared"}

#: Pragma marking a shared object as intentionally shard-safe.
SHARD_SAFE_PRAGMA = "simlint: shard-safe"

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "move_to_end", "pop", "popitem", "popleft",
    "remove", "reverse", "rotate", "setdefault", "sort", "update",
    "difference_update", "intersection_update", "symmetric_difference_update",
})

#: Constructor calls whose result is a shared *mutable* container.
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "bytearray", "OrderedDict", "defaultdict",
    "deque", "Counter", "ChainMap",
})


@dataclass(frozen=True)
class SharedObject:
    """One module- or class-level mutable object."""

    qualname: str               # repro.workloads.azure._EVENTS_CACHE
    module: str
    relpath: str
    line: int
    kind: str                   # "module" | "class-attr"
    shard_safe: bool            # pragma present on the defining line


@dataclass(frozen=True)
class SharedAccess:
    """One read or write of a shared object from a function."""

    obj: str                    # SharedObject qualname
    function: str               # accessing function qualname
    relpath: str
    line: int
    write: bool
    via: str                    # "store" | "mutator" | "global" | \
    #                             "load" | "argument"


@dataclass
class EffectReport:
    """Inference output: shared objects, accesses, per-function effects."""

    shared: Dict[str, SharedObject] = field(default_factory=dict)
    accesses: List[SharedAccess] = field(default_factory=list)
    effects: Dict[str, int] = field(default_factory=dict)
    #: function qualname -> zero-based indices of mutated parameters.
    mutated_params: Dict[str, Set[int]] = field(default_factory=dict)

    def effect_name(self, qualname: str) -> str:
        return EFFECT_NAMES[self.effects.get(qualname, PURE)]

    def writers_of(self, obj_qualname: str) -> List[SharedAccess]:
        return [a for a in self.accesses
                if a.obj == obj_qualname and a.write]


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        parts = _dotted_parts(node.func)
        if parts and parts[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


def _line_has_pragma(module: ParsedModule, lineno: int) -> bool:
    if 1 <= lineno <= len(module.lines):
        return SHARD_SAFE_PRAGMA in module.lines[lineno - 1]
    return False


def collect_shared_objects(modules: Dict[str, ParsedModule]
                           ) -> Dict[str, SharedObject]:
    """Module-level and class-level mutable bindings, project-wide."""
    shared: Dict[str, SharedObject] = {}

    def record(modname: str, relpath: str, owner: Optional[str],
               name: str, node: ast.stmt, module: ParsedModule) -> None:
        qual = f"{owner}.{name}" if owner else f"{modname}.{name}"
        shared[qual] = SharedObject(
            qualname=qual, module=modname, relpath=relpath,
            line=node.lineno, kind="class-attr" if owner else "module",
            shard_safe=_line_has_pragma(module, node.lineno))

    for relpath in sorted(modules):
        module = modules[relpath]
        modname = module_name_for(relpath)

        def scan(body: Sequence[ast.stmt], owner: Optional[str]) -> None:
            for node in body:
                value: Optional[ast.expr]
                targets: List[ast.expr]
                if isinstance(node, ast.Assign):
                    value, targets = node.value, list(node.targets)
                elif isinstance(node, ast.AnnAssign) and \
                        node.value is not None:
                    value, targets = node.value, [node.target]
                else:
                    continue
                if value is None or not _is_mutable_value(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        record(modname, relpath, owner, target.id, node,
                               module)

        scan(module.tree.body, owner=None)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                scan(node.body, owner=f"{modname}.{node.name}")
    return shared


class _FunctionScanner:
    """Extracts one function's direct shared-state accesses."""

    def __init__(self, info: FunctionInfo, graph: CallGraph,
                 shared: Dict[str, SharedObject]) -> None:
        self._info = info
        self._graph = graph
        self._shared = shared
        self._aliases = graph.aliases.get(info.module, {})
        self._globals_declared: Set[str] = set()
        node: ast.AST
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                self._globals_declared.update(node.names)
        self._params = [a.arg for a in info.node.args.posonlyargs
                        + info.node.args.args]
        if self._info.class_qualname is not None and self._params and \
                self._params[0] in ("self", "cls"):
            self._params = self._params[1:]
            self._skip_self = True
        else:
            self._skip_self = False

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self._params.index(name)
        except ValueError:
            return None

    def shared_qualname(self, node: ast.expr) -> Optional[str]:
        """Resolve an expression to a shared-object qualname, if any."""
        parts = _dotted_parts(node)
        if not parts:
            return None
        if len(parts) == 1:
            qual = f"{self._info.module}.{parts[0]}"
            if qual in self._shared:
                return qual
            target = self._aliases.get(parts[0])
            if target is not None and target in self._shared:
                return target
            return None
        head = self._aliases.get(parts[0], parts[0])
        dotted = ".".join([head] + parts[1:])
        if dotted in self._shared:
            return dotted
        # Class attribute through a local class name: Cls.attr.
        if len(parts) == 2:
            qual = f"{self._info.module}.{parts[0]}.{parts[1]}"
            if qual in self._shared:
                return qual
        return None

    def scan(self, accesses: List[SharedAccess],
             mutated_params: Set[int]) -> None:
        info = self._info
        reads_seen: Set[Tuple[str, int]] = set()
        node: ast.AST
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets: List[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                else:
                    targets = [node.target]
                for target in targets:
                    self._scan_store(target, node.lineno, accesses,
                                     mutated_params)
            elif isinstance(node, ast.Call):
                self._scan_call(node, accesses, mutated_params)
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load):
                qual = self.shared_qualname(node)
                if qual is not None and (qual, node.lineno) not in reads_seen:
                    reads_seen.add((qual, node.lineno))
                    accesses.append(SharedAccess(
                        obj=qual, function=info.qualname,
                        relpath=info.relpath, line=node.lineno,
                        write=False, via="load"))

    def _scan_store(self, target: ast.expr, lineno: int,
                    accesses: List[SharedAccess],
                    mutated_params: Set[int]) -> None:
        info = self._info
        if isinstance(target, ast.Name):
            if target.id in self._globals_declared:
                accesses.append(SharedAccess(
                    obj=f"{info.module}.{target.id}",
                    function=info.qualname, relpath=info.relpath,
                    line=lineno, write=True, via="global"))
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            qual = self.shared_qualname(base)
            if qual is not None:
                accesses.append(SharedAccess(
                    obj=qual, function=info.qualname,
                    relpath=info.relpath, line=lineno, write=True,
                    via="store"))
                return
            if isinstance(base, ast.Name):
                idx = self.param_index(base.id)
                if idx is not None and isinstance(target, ast.Subscript):
                    mutated_params.add(idx)

    def _scan_call(self, node: ast.Call, accesses: List[SharedAccess],
                   mutated_params: Set[int]) -> None:
        info = self._info
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in _MUTATOR_METHODS:
            qual = self.shared_qualname(func.value)
            if qual is not None:
                accesses.append(SharedAccess(
                    obj=qual, function=info.qualname,
                    relpath=info.relpath, line=node.lineno, write=True,
                    via="mutator"))
            elif isinstance(func.value, ast.Name):
                idx = self.param_index(func.value.id)
                if idx is not None:
                    mutated_params.add(idx)

    def argument_objects(self, node: ast.Call
                         ) -> List[Tuple[int, str]]:
        """(positional index, shared qualname) for shared args."""
        out: List[Tuple[int, str]] = []
        for idx, arg in enumerate(node.args):
            qual = self.shared_qualname(arg)
            if qual is not None:
                out.append((idx, qual))
        return out


def infer_effects(modules: Dict[str, ParsedModule],
                  graph: CallGraph) -> EffectReport:
    """Run the full inference: shared objects, accesses, fixpoints."""
    report = EffectReport()
    report.shared = collect_shared_objects(modules)

    scanners: Dict[str, _FunctionScanner] = {}
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        scanner = _FunctionScanner(info, graph, report.shared)
        scanners[qualname] = scanner
        mutated: Set[int] = set()
        scanner.scan(report.accesses, mutated)
        report.mutated_params[qualname] = mutated

    # Fixpoint 1: parameter mutation through call chains (f passes its
    # parameter onward into a mutated position of g).
    changed = True
    while changed:
        changed = False
        for qualname in sorted(graph.functions):
            scanner = scanners[qualname]
            info = graph.functions[qualname]
            mutated = report.mutated_params[qualname]
            node: ast.AST
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callees = _static_callees(graph, qualname, node)
                for callee in callees:
                    callee_mut = report.mutated_params.get(callee, set())
                    if not callee_mut:
                        continue
                    for idx, arg in enumerate(node.args):
                        if idx not in callee_mut:
                            continue
                        if isinstance(arg, ast.Name):
                            pidx = scanner.param_index(arg.id)
                            if pidx is not None and pidx not in mutated:
                                mutated.add(pidx)
                                changed = True

    # Shared objects passed into mutated parameter positions.
    for qualname in sorted(graph.functions):
        scanner = scanners[qualname]
        info = graph.functions[qualname]
        node_w: ast.AST
        for node_w in ast.walk(info.node):
            if not isinstance(node_w, ast.Call):
                continue
            shared_args = scanner.argument_objects(node_w)
            if not shared_args:
                continue
            for callee in _static_callees(graph, qualname, node_w):
                callee_mut = report.mutated_params.get(callee, set())
                for idx, obj in shared_args:
                    if idx in callee_mut:
                        report.accesses.append(SharedAccess(
                            obj=obj, function=qualname,
                            relpath=info.relpath, line=node_w.lineno,
                            write=True, via="argument"))

    # Direct effects, then the transitive fixpoint over the call graph.
    for qualname in graph.functions:
        report.effects[qualname] = PURE
    for access in report.accesses:
        current = report.effects.get(access.function, PURE)
        level = WRITES_SHARED if access.write else READS_SHARED
        if level > current:
            report.effects[access.function] = level
    changed = True
    while changed:
        changed = False
        for qualname in sorted(graph.functions):
            level = report.effects[qualname]
            if level == WRITES_SHARED:
                continue
            for site in graph.callees(qualname):
                callee_level = report.effects.get(site.callee, PURE)
                if callee_level > level:
                    level = callee_level
            if level != report.effects[qualname]:
                report.effects[qualname] = level
                changed = True

    report.accesses.sort(key=lambda a: (a.relpath, a.line, a.obj,
                                        a.function, a.via))
    return report


def _static_callees(graph: CallGraph, caller: str,
                    call: ast.Call) -> List[str]:
    """Callees recorded for this exact call site (matched by position)."""
    out: List[str] = []
    for site in graph.callees(caller):
        if site.line == call.lineno and site.col == call.col_offset:
            out.append(site.callee)
    return out
