"""Command-line entry point: run any paper experiment from the shell.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli fig21
    python -m repro.cli fig17 --workload W2 --duration 600
    python -m repro.cli fig24 --instances 20 --cores 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

import numpy as np

from repro.bench import agents, container, faults


def _jsonable(obj):
    """Recursively convert experiment results to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        if obj.size > 64:
            return {"len": int(obj.size),
                    "min": float(obj.min()) if obj.size else None,
                    "max": float(obj.max()) if obj.size else None}
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    return obj


def _fig17(args):
    return container.run_fig17_fig18(args.workload, duration=args.duration)


def _fig18b(args):
    return {fn: container.run_fig18b_scaling(fn, instances=args.instances)
            for fn in ("IR", "IFR")}


def _fig20(args):
    return container.run_fig20_traces(args.trace, duration=args.duration)


def _fig24(args):
    return agents.run_fig24_browser_sharing(instances=args.instances,
                                            cores=args.cores)


def _fig25(args):
    return agents.run_fig25_agent_memory(instances=args.instances)


EXPERIMENTS: Dict[str, Callable] = {
    "table1": lambda a: container.run_table1_components(),
    "table2": lambda a: agents.run_table2_agents(),
    "table3": lambda a: agents.run_table3_tokens(),
    "fig3": lambda a: agents.run_fig3_cost(),
    "fig4": lambda a: container.run_fig4_breakdown(),
    "fig10": lambda a: container.run_fig10_readonly(),
    "fig17": _fig17,
    "fig18b": _fig18b,
    "fig19": lambda a: container.run_fig19_noconc(),
    "fig20": _fig20,
    "fig21": lambda a: container.run_fig21_ablation(),
    "fig22": lambda a: container.run_fig22_cxl_vs_rdma(),
    "fig23": lambda a: agents.run_fig23_startup(),
    "fig24": _fig24,
    "fig25": _fig25,
    "fig26": lambda a: agents.run_fig26_memory_timeline(),
    "chaos": lambda a: faults.run_chaos_recovery(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TrEnv paper experiments")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("lint",
                   help="simlint static analysis (see `repro lint --help`)",
                   add_help=False)
    perf = sub.add_parser(
        "perf", help="host-side perf harness (writes BENCH_perf.json)")
    perf.add_argument("--quick", action="store_true",
                      help="CI-sized run: fewer iterations, shorter workload")
    perf.add_argument("--out", default="BENCH_perf.json",
                      help="output path (default: BENCH_perf.json)")
    perf.add_argument("--jobs", type=int, default=0,
                      help="cap the worker counts the parallel section "
                           "sweeps (0 = profile default ladder)")
    perf.add_argument("--json", action="store_true",
                      help="emit raw JSON instead of pretty print")
    perf.add_argument("--profile", action="store_true",
                      help="cProfile the run; print top-25 by cumulative")
    sweep = sub.add_parser(
        "sweep",
        help="parallel experiment sweep (writes BENCH_sweep.json)")
    sweep.add_argument("--quick", action="store_true",
                       help="CI-sized grid: two shards instead of the "
                            "full (seed, policy, trace) product")
    sweep.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = CPU count, 1 = serial "
                            "in-process; shards are bit-identical either "
                            "way)")
    sweep.add_argument("--out", default="BENCH_sweep.json",
                       help="output path (default: BENCH_sweep.json)")
    sweep.add_argument("--json", action="store_true",
                       help="emit raw JSON instead of pretty print")
    sweep.add_argument("--profile", action="store_true",
                       help="cProfile the run; print top-25 by cumulative")
    sweep.add_argument("--obs-level", default="off",
                       choices=("off", "metrics", "spans"),
                       help="per-shard observability; shard registries "
                            "are merged into the sweep report")
    overload = sub.add_parser(
        "overload",
        help="overload + chaos control-plane benchmark "
             "(writes BENCH_overload.json)")
    overload.add_argument("--quick", action="store_true",
                          help="CI-sized surge: smaller rack, shorter "
                               "overload window")
    overload.add_argument("--seed", type=int, default=1)
    overload.add_argument("--jobs", type=int, default=0,
                          help="requested worker processes; overload runs "
                               "are control-armed + fault-injected, so "
                               "the report records the serial fallback "
                               "and its reasons")
    overload.add_argument("--out", default="BENCH_overload.json",
                          help="output path (default: BENCH_overload.json)")
    overload.add_argument("--json", action="store_true",
                          help="emit raw JSON instead of pretty print")
    overload.add_argument("--profile", action="store_true",
                          help="cProfile the run; print top-25 by cumulative")
    overload.add_argument("--obs-level", default="off",
                          choices=("off", "metrics", "spans"),
                          help="observe the runs: metrics embeds the "
                               "registry in the report, spans also "
                               "writes a Chrome trace")
    overload.add_argument("--trace-out", default="overload_trace.json",
                          help="Chrome-trace path for --obs-level spans")
    trace = sub.add_parser(
        "trace",
        help="run a scenario under repro.obs and export a Perfetto trace")
    trace.add_argument("scenario", choices=("w1", "w2", "cluster"),
                       help="what to trace: single-node W1/W2, or the "
                            "3-node rack on W2")
    trace.add_argument("--obs-level", default="spans",
                       choices=("off", "metrics", "spans"),
                       help="off = timing reference, metrics = registry "
                            "only, spans = registry + Chrome trace")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome-trace output path (default: "
                            "trace.json; load it in ui.perfetto.dev)")
    trace.add_argument("--platform", default="t-cxl",
                       help="platform key for w1/w2 (default: t-cxl)")
    trace.add_argument("--duration", type=float, default=60.0)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--nodes", type=int, default=3,
                       help="rack size for the cluster scenario")
    trace.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the cluster scenario "
                            "(0 = CPU count); the exported trace is "
                            "byte-identical for every worker count")
    trace.add_argument("--json", action="store_true",
                       help="emit raw JSON instead of pretty print")
    why = sub.add_parser(
        "why",
        help="critical-path latency attribution: per-phase blame, "
             "tail-cohort diff, flame-graph folded stacks")
    why.add_argument("scenario", choices=("w2", "cluster", "overload"),
                     help="what to explain: single-node W2, the sharded "
                          "rack on W2, or a control-armed surge")
    why.add_argument("--format", default="text", choices=("text", "json"),
                     dest="fmt",
                     help="stdout rendering (default: text)")
    why.add_argument("--out", default=None,
                     help="also write the JSON report to this path")
    why.add_argument("--duration", type=float, default=60.0)
    why.add_argument("--seed", type=int, default=1)
    why.add_argument("--nodes", type=int, default=3,
                     help="rack size for cluster/overload scenarios")
    why.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the cluster scenario "
                          "(the report is identical for every count)")
    why.add_argument("--platform", default="t-cxl",
                     help="platform key for the w2 scenario")
    why.add_argument("--tail", type=float, default=0.99,
                     help="tail cohort quantile (default: 0.99)")
    for name in EXPERIMENTS:
        p = sub.add_parser(name, help=f"run the {name} experiment")
        p.add_argument("--workload", default="W1", choices=("W1", "W2"))
        p.add_argument("--trace", default="azure",
                       choices=("azure", "huawei"))
        p.add_argument("--duration", type=float, default=900.0)
        p.add_argument("--instances", type=int, default=20)
        p.add_argument("--cores", type=int, default=4)
        p.add_argument("--json", action="store_true",
                       help="emit raw JSON instead of pretty print")
        p.add_argument("--profile", action="store_true",
                       help="cProfile the run; print top-25 by cumulative")
    return parser


def _run_profiled(fn):
    """Run ``fn`` under cProfile, print top-25 by cumulative time."""
    import cProfile
    import pstats
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # Delegated wholesale: simlint owns its own argparse surface.
        from repro.analysis.simlint import main as lint_main
        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        print("perf")
        print("sweep")
        print("overload")
        print("trace")
        print("why")
        print("lint")
        return 0
    if args.command == "why":
        from repro.obs.why import render_text, run_why_scenario
        report = run_why_scenario(
            args.scenario, duration=args.duration, seed=args.seed,
            nodes=args.nodes, jobs=args.jobs, platform=args.platform,
            tail_q=args.tail)
        payload = _jsonable(report)
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")
        if args.fmt == "json":
            json.dump(payload, sys.stdout)
            print()
        else:
            sys.stdout.write(render_text(report))
        return 0
    if args.command == "perf":
        from repro.bench.perf import run_perf
        runner = lambda: run_perf(quick=args.quick, out_path=args.out,
                                  jobs=args.jobs)
    elif args.command == "sweep":
        from repro.bench.sweep import run_sweep
        runner = lambda: run_sweep(jobs=args.jobs, quick=args.quick,
                                   out_path=args.out,
                                   obs_level=args.obs_level)
    elif args.command == "overload":
        from repro.bench.experiments_overload import run_overload_chaos

        def _overload():
            if args.obs_level != "off":
                from repro.obs.export import write_chrome_trace
                from repro.obs.observer import observed
                with observed(args.obs_level) as obs:
                    report = run_overload_chaos(seed=args.seed,
                                                quick=args.quick,
                                                jobs=args.jobs)
                report["obs"] = obs.registry.to_dict()
                if obs.tracer is not None:
                    write_chrome_trace(obs.tracer, args.trace_out)
            else:
                report = run_overload_chaos(seed=args.seed,
                                            quick=args.quick,
                                            jobs=args.jobs)
            with open(args.out, "w") as fh:
                json.dump(_jsonable(report), fh, indent=2)
                fh.write("\n")
            return report
        runner = _overload
    elif args.command == "trace":
        from repro.obs.capture import run_traced_scenario
        runner = lambda: run_traced_scenario(
            args.scenario, level=args.obs_level, out=args.out,
            platform=args.platform, duration=args.duration,
            seed=args.seed, nodes=args.nodes, jobs=args.jobs)
    else:
        runner = lambda: EXPERIMENTS[args.command](args)
    if getattr(args, "profile", False):
        result = _run_profiled(runner)
    else:
        result = runner()
    payload = _jsonable(result)
    if getattr(args, "json", False):
        json.dump(payload, sys.stdout)
        print()
    else:
        print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
