"""Timed hypervisor operations: spawn, boot, snapshot restore paths.

Restore modes compared in the paper:

* ``COPY`` — vanilla Cloud Hypervisor: full guest-memory copy,
  >700 ms for a 2 GB guest (§9.6.1).
* ``LAZY`` — REAP/FaaSnap-style: resume from snapshot with a userfaultfd
  handler; the recorded working set is prefetched (eagerly for REAP,
  asynchronously for FaaSnap) and stragglers fault on demand.
* ``TEMPLATE`` — TrEnv's enhanced CH: restore memory via one mmap of a
  DAX device / memory template; pages populate lazily at near-zero cost.
"""

from __future__ import annotations

import enum
from typing import Generator, Optional

from repro.kernel.cgroup import CgroupLimits
from repro.mem.accounting import MemoryAccountant
from repro.mem.page_cache import FileIdRegistry, PageCache
from repro.node import Node
from repro.sim.engine import Delay
from repro.vm.microvm import GuestConfig, MicroVM, VMState


class RestoreMode(enum.Enum):
    COPY = "copy"
    LAZY = "lazy"
    TEMPLATE = "template"


class Hypervisor:
    """Creates microVMs on a node, inside jailer sandboxes."""

    def __init__(self, node: Node, host_cache: Optional[PageCache] = None,
                 file_registry: Optional[FileIdRegistry] = None):
        self.node = node
        self.host_cache = host_cache or PageCache(
            "host-cache",
            on_delta=lambda d: node.memory.charge_pages("host-page-cache", d))
        self.files = file_registry or FileIdRegistry()
        self.boots = 0
        self.restores = 0

    # -- sandboxing the VMM (jailer) ----------------------------------------------

    def create_jailer_sandbox(self, netns_pooled: bool = False,
                              clone_into_cgroup: bool = False,
                              e2b_costs: bool = False) -> Generator:
        """Timed: the isolation shell around the VMM process.

        ``e2b_costs`` applies the measured E2B setup costs (§9.6.1:
        ~97 ms network + ~63 ms cgroup migration); otherwise the generic
        namespace/cgroup costs apply.  ``netns_pooled`` skips network
        setup (the REAP+/FaaSnap+/TrEnv enhancement).
        """
        node = self.node
        lat = node.latency
        if not netns_pooled:
            if e2b_costs:
                yield Delay(lat.vm.net_setup_e2b)
            else:
                yield node.namespaces.create_netns()
        cgroup = yield node.cgroups.create("jailer", CgroupLimits())
        if e2b_costs and not clone_into_cgroup:
            yield Delay(lat.vm.cgroup_migrate_e2b)
        elif clone_into_cgroup:
            yield node.cgroups.clone_into(0, cgroup)
        else:
            yield node.cgroups.migrate(0, cgroup)
        return cgroup

    # -- VM lifecycle -----------------------------------------------------------------

    def spawn_vm(self, config: GuestConfig, name: str = "") -> Generator:
        """Timed: start the VMM process (no guest boot yet)."""
        yield Delay(self.node.latency.vm.vmm_spawn)
        vm = MicroVM(config, self.node.memory, self.host_cache, self.files,
                     name=name)
        vm.charge_base_overheads()
        return vm

    def boot_cold(self, vm: MicroVM) -> Generator:
        """Timed: full guest kernel boot."""
        yield Delay(self.node.latency.vm.guest_boot)
        vm.state = VMState.RUNNING
        self.boots += 1
        return vm

    def restore_snapshot(self, vm: MicroVM, snapshot_bytes: int,
                         mode: RestoreMode) -> Generator:
        """Timed: bring a paused snapshot back to RUNNING.

        ``snapshot_bytes`` is the resident guest memory recorded in the
        snapshot (guest kernel + bootstrapped function/agent state).
        """
        lat = self.node.latency.vm
        if mode == RestoreMode.COPY:
            yield Delay(lat.restore_base
                        + snapshot_bytes * lat.restore_copy_per_byte)
        elif mode == RestoreMode.LAZY:
            # Register uffd + map the snapshot file; pages come later.
            yield Delay(lat.restore_base)
        elif mode == RestoreMode.TEMPLATE:
            # One mmap of the template/DAX device (§7).
            yield Delay(lat.mmap_restore)
        else:
            raise ValueError(f"unknown restore mode: {mode}")
        yield Delay(lat.snapshot_resume)
        vm.state = VMState.RUNNING
        self.restores += 1
        return vm

    def destroy_vm(self, vm: MicroVM) -> Generator:
        yield Delay(self.node.latency.proc.kill_process)
        vm.release_all()
