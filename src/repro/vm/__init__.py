"""MicroVM substrate (Firecracker / Cloud Hypervisor model).

Models what matters for the paper's VM-side claims:

* restore paths — vanilla full-copy (>700 ms for 2 GB, §9.6.1), lazy
  userfaultfd-style (REAP/FaaSnap), and TrEnv's single-mmap/template path;
* guest/host page-cache duplication under virtio-blk, and its elimination
  with a shared read-only virtio-pmem base + O_DIRECT writable overlay
  (§6.3, Figure 16);
* the jailer sandbox around the VMM (namespaces + cgroup), which is what
  makes repurposable sandboxes applicable to VMs (§6).
"""

from repro.vm.microvm import GuestConfig, MicroVM, StorageMode, VMState
from repro.vm.hypervisor import Hypervisor, RestoreMode

__all__ = [
    "GuestConfig",
    "Hypervisor",
    "MicroVM",
    "RestoreMode",
    "StorageMode",
    "VMState",
]
