"""MicroVM objects: guest config, storage model, page-cache behaviour.

The double-caching problem (§2.4): with a para-virtualised block device
(virtio-blk), a guest file read populates the *guest* page cache and, via
the host-side emulation, the *host* page cache too — two copies of every
block, per VM (each VM has its own rootfs device file, so host entries do
not even dedup across VMs).

TrEnv's storage model (§6.3, Figure 16): a read-only virtio-pmem **base**
device shared by all VMs (DAX: guest page cache bypassed, host caches one
copy for the whole node) plus a per-VM writable overlay opened with
``O_DIRECT`` (no host cache), unioned inside the guest by overlayfs.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.mem.accounting import MemoryAccountant
from repro.mem.address_space import AddressSpace
from repro.mem.layout import GB, MB
from repro.mem.page_cache import FileIdRegistry, PageCache
from repro.obs import hooks as obs_hooks

#: Host-side footprint of one VMM process (device emulation, rt threads).
VMM_OVERHEAD = 15 * MB
#: Guest kernel + init system resident set after boot.
GUEST_KERNEL_RSS = 85 * MB


class StorageMode(enum.Enum):
    #: Per-VM virtio-blk rootfs (Firecracker / E2B): double caching.
    VIRTIO_BLK = "virtio-blk"
    #: RunD-style shared rootfs mapping (E2B+): host cache shared, guest
    #: cache bypassed — but incompatible with CoW memory templates (§3.3).
    VIRTIOFS_DAX = "virtiofs-dax"
    #: TrEnv: shared read-only pmem base + O_DIRECT writable overlay.
    PMEM_UNION = "pmem-union"


class VMState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    PAUSED = "paused"
    DESTROYED = "destroyed"


@dataclass(frozen=True)
class GuestConfig:
    """Per-VM resources (§9.6: 1 vCPU, 2–4 GB, 5 GB storage)."""

    vcpus: int = 1
    mem_bytes: int = 2 * GB
    storage: StorageMode = StorageMode.VIRTIO_BLK
    base_image: str = "agent-rootfs"


class MicroVM:
    """One microVM: guest memory, page caches, storage devices."""

    _ids = itertools.count(1)

    def __init__(self, config: GuestConfig, accountant: MemoryAccountant,
                 host_cache: PageCache, file_registry: FileIdRegistry,
                 name: str = ""):
        self.vm_id = next(MicroVM._ids)
        self.config = config
        self.name = name or f"vm{self.vm_id}"
        self.accountant = accountant
        self.state = VMState.CREATED
        # Function/agent anonymous memory inside the guest, seen host-side.
        self.guest_memory = AddressSpace(
            f"{self.name}/guest",
            on_local_delta=accountant.page_delta_hook("vm-guest-anon"))
        # Guest page cache consumes guest RAM (host-visible, it is anon
        # memory of the VMM).
        self.guest_cache = PageCache(
            f"{self.name}/guest-cache",
            on_delta=lambda d: accountant.charge_pages("vm-guest-cache", d))
        # The host page cache is shared across VMs on the node.
        self.host_cache = host_cache
        self.files = file_registry
        self.kernel_charged = False
        self.function: Optional[str] = None
        # Host-cache file ids private to this VM (per-VM device files);
        # reclaimed when the VM is destroyed.  Shared base-image entries
        # are NOT tracked here -- they outlive any one VM.
        self._private_host_fids: set = set()

    # -- lifecycle accounting ------------------------------------------------------

    def charge_base_overheads(self) -> None:
        self.accountant.charge("vmm-overhead", VMM_OVERHEAD)
        self.accountant.charge("vm-guest-kernel", GUEST_KERNEL_RSS)
        self.kernel_charged = True
        if obs_hooks.active is not None:
            obs_hooks.active.on_vm_event("create", self.name,
                                         self.accountant.now())

    def release_all(self) -> None:
        if obs_hooks.active is not None:
            obs_hooks.active.on_vm_event("destroy", self.name,
                                         self.accountant.now())
        if self.kernel_charged:
            self.accountant.charge("vmm-overhead", -VMM_OVERHEAD)
            self.accountant.charge("vm-guest-kernel", -GUEST_KERNEL_RSS)
            self.kernel_charged = False
        self.guest_memory.destroy()
        self.guest_cache.drop_all()
        # The kernel reclaims host page-cache entries of this VM's
        # private device files once they are closed and deleted.
        # Sorted: eviction order feeds the shared accountant's timeline,
        # so it must not depend on set iteration order (SIM003).
        for fid in sorted(self._private_host_fids):
            self.host_cache.evict_file(fid)
        self._private_host_fids.clear()
        self.state = VMState.DESTROYED

    # -- storage model ----------------------------------------------------------------

    def read_files(self, nbytes: int, file_key: str = "rootfs",
                   write: bool = False, offset: int = 0,
                   ctx=None) -> float:
        """Charge page caches for a guest file access; returns IO seconds.

        The return value is the *device-level* IO time (cache-miss
        portion); callers add it to the invocation's IO wait.  ``ctx`` is
        the observing invocation's TraceContext (or None).
        """
        if self.state == VMState.DESTROYED:
            raise RuntimeError(f"{self.name} is destroyed")
        mode = self.config.storage
        if write:
            return self._write_files(nbytes, file_key, offset, ctx=ctx)
        if mode == StorageMode.VIRTIO_BLK:
            # Per-VM device file: guest caches it, host caches it again,
            # and host entries are private to this VM's device.
            guest_fid = self.files.file_id("blk", self.vm_id, file_key)
            fresh_guest = self.guest_cache.charge_file(guest_fid, nbytes,
                                                       offset)
            host_fid = self.files.file_id("blk-host", self.vm_id, file_key)
            self._private_host_fids.add(host_fid)
            self.host_cache.charge_file(host_fid, nbytes, offset)
            io = fresh_guest * 4e-6    # virtio-blk IO per fresh 4K block
        elif mode == StorageMode.VIRTIOFS_DAX:
            # RunD: guest cache bypassed; host cache shared by content.
            host_fid = self.files.file_id("shared", self.config.base_image,
                                          file_key)
            fresh = self.host_cache.charge_file(host_fid, nbytes, offset)
            io = fresh * 2e-6
        elif mode == StorageMode.PMEM_UNION:
            # TrEnv: read-only base via pmem DAX — guest cache bypassed,
            # one host copy per node, near-memory access speed.
            host_fid = self.files.file_id("pmem-base", self.config.base_image,
                                          file_key)
            fresh = self.host_cache.charge_file(host_fid, nbytes, offset)
            io = fresh * 0.25e-6
        else:
            raise AssertionError(f"unhandled storage mode {mode}")
        if obs_hooks.active is not None:
            obs_hooks.active.on_vm_io(f"read-{mode.value}", nbytes, io,
                                      ctx=ctx)
        return io

    def _write_files(self, nbytes: int, file_key: str, offset: int = 0,
                     ctx=None) -> float:
        mode = self.config.storage
        if mode == StorageMode.PMEM_UNION:
            # Writable overlay device opened O_DIRECT: bypasses the host
            # cache entirely; the guest caches its own dirty data.
            guest_fid = self.files.file_id("ovl", self.vm_id, file_key)
            fresh = self.guest_cache.charge_file(guest_fid, nbytes, offset)
            io = fresh * 6e-6   # O_DIRECT write, no host cache
        else:
            # virtio-blk / virtiofs writes: guest + host cache double up.
            guest_fid = self.files.file_id("blk", self.vm_id, file_key)
            fresh = self.guest_cache.charge_file(guest_fid, nbytes, offset)
            host_fid = self.files.file_id("blk-host", self.vm_id, file_key)
            self._private_host_fids.add(host_fid)
            self.host_cache.charge_file(host_fid, nbytes, offset)
            io = fresh * 4e-6
        if obs_hooks.active is not None:
            obs_hooks.active.on_vm_io(f"write-{mode.value}", nbytes, io,
                                      ctx=ctx)
        return io

    @property
    def resident_bytes(self) -> int:
        """Host memory attributable to this VM (excl. shared host cache)."""
        total = self.guest_memory.local_bytes + self.guest_cache.cached_bytes
        if self.kernel_charged:
            total += VMM_OVERHEAD + GUEST_KERNEL_RSS
        return total
