"""Two-dimensional paging (EPT) with mm-template pre-population.

§8.1.3: in a KVM-style VM, memory sharing for CXL is *easier* than for
containers because the second-level translation (guest physical → host
physical) is a natural interposition point: the GPA→HPA mappings can be
file-backed onto the DAX device with CoW enabled by a minor kernel
change.  The paper sketches a further optimisation — **pre-populating**
the two-dimensional page tables for hot regions from the mm-template, so
read accesses never take the page-fault VM exit.

This module implements that design: an EPT whose entries carry the same
four states as first-level PTEs, plus a pre-population pass driven by a
hotness mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis import hooks
from repro.mem.address_space import (PTE_LOCAL, PTE_NONE,
                                     PTE_REMOTE_INVALID, PTE_REMOTE_RO)
from repro.mem.pools import MemoryPool, PoolBlock
from repro.sim.latency import LatencyModel


@dataclass
class EPTAccessOutcome:
    """Counts from driving guest accesses through the EPT."""

    vm_exits: int = 0            # EPT violations (fault round trips)
    pages_fetched: int = 0       # pulled from a non-addressable pool
    cow_faults: int = 0
    local_pages_allocated: int = 0
    direct_loads: int = 0        # served by pre-populated CXL mappings

    def merge(self, other: "EPTAccessOutcome") -> None:
        self.vm_exits += other.vm_exits
        self.pages_fetched += other.pages_fetched
        self.cow_faults += other.cow_faults
        self.local_pages_allocated += other.local_pages_allocated
        self.direct_loads += other.direct_loads


class ExtendedPageTable:
    """GPA→HPA translation for one guest's memory template region."""

    def __init__(self, npages: int, latency: Optional[LatencyModel] = None,
                 on_local_delta=None):
        self.npages = npages
        self.latency = latency or LatencyModel()
        self.state = np.zeros(npages, dtype=np.uint8)
        self.offsets = np.full(npages, -1, dtype=np.int64)
        self.pool: Optional[MemoryPool] = None
        self.local_pages = 0
        self.on_local_delta = on_local_delta
        self.prepopulated_pages = 0

    # -- template binding -----------------------------------------------------------

    def bind_template(self, block: PoolBlock) -> None:
        """Install the guest-memory template: all entries invalid (lazy),
        carrying the pool offsets — the baseline lazy-restore VM."""
        if block.npages != self.npages:
            raise ValueError(
                f"block covers {block.npages} pages, EPT has {self.npages}")
        self.state[:] = PTE_REMOTE_INVALID
        self.offsets[:] = block.offsets
        self.pool = block.pool
        if hooks.active is not None:
            hooks.active.on_pte_bound(self)

    def prepopulate(self, hot_mask: np.ndarray) -> float:
        """Pre-install valid read-only GPA→HPA entries for hot pages.

        Returns the (preprocessing-time) cost of walking and filling the
        entries.  Only meaningful on byte-addressable pools — on RDMA
        there is nothing to map directly.
        """
        if self.pool is None:
            raise RuntimeError("bind_template first")
        hot_mask = np.asarray(hot_mask, dtype=bool)
        if len(hot_mask) != self.npages:
            raise ValueError("hot mask length mismatch")
        if not self.pool.byte_addressable:
            return 0.0
        valid = self.pool.valid_mask(self.offsets) & hot_mask
        eligible = valid & (self.state == PTE_REMOTE_INVALID)
        count = int(np.count_nonzero(eligible))
        self.state[eligible] = PTE_REMOTE_RO
        self.prepopulated_pages += count
        if hooks.active is not None:
            hooks.active.on_pte_bound(self)
        # ~80 ns per EPT entry install during preprocessing.
        return count * 80e-9

    # -- guest accesses -------------------------------------------------------------

    def access(self, read_gpns: np.ndarray, write_gpns: np.ndarray
               ) -> EPTAccessOutcome:
        """Guest touches pages; returns fault/exit counts."""
        out = EPTAccessOutcome()
        out.merge(self._writes(np.asarray(write_gpns, dtype=np.int64)))
        out.merge(self._reads(np.asarray(read_gpns, dtype=np.int64)))
        return out

    def _reads(self, gpns: np.ndarray) -> EPTAccessOutcome:
        out = EPTAccessOutcome()
        if len(gpns) == 0:
            return out
        self._bounds_check(gpns)
        states = self.state[gpns]
        # Pre-populated or already-local: no exit at all.
        out.direct_loads += int(np.count_nonzero(states == PTE_REMOTE_RO))
        invalid = gpns[states == PTE_REMOTE_INVALID]
        if len(invalid):
            # EPT violation per page: VM exit + fetch + map.
            out.vm_exits += len(invalid)
            out.pages_fetched += len(invalid)
            self.state[invalid] = PTE_LOCAL
            out.local_pages_allocated += len(invalid)
            self._charge(len(invalid))
        none = gpns[states == PTE_NONE]
        out.vm_exits += len(none)   # zero-page mapping exit, no memory
        return out

    def _writes(self, gpns: np.ndarray) -> EPTAccessOutcome:
        out = EPTAccessOutcome()
        if len(gpns) == 0:
            return out
        self._bounds_check(gpns)
        states = self.state[gpns]
        ro = gpns[states == PTE_REMOTE_RO]
        if len(ro):
            # Write-protection violation: exit + CoW into local DRAM.
            out.vm_exits += len(ro)
            out.cow_faults += len(ro)
            self.state[ro] = PTE_LOCAL
            out.local_pages_allocated += len(ro)
            self._charge(len(ro))
            if hooks.active is not None:
                hooks.active.on_pte_cow(self, len(ro))
        invalid = gpns[states == PTE_REMOTE_INVALID]
        if len(invalid):
            out.vm_exits += len(invalid)
            out.pages_fetched += len(invalid)
            out.cow_faults += len(invalid)
            self.state[invalid] = PTE_LOCAL
            out.local_pages_allocated += len(invalid)
            self._charge(len(invalid))
        none = gpns[states == PTE_NONE]
        if len(none):
            out.vm_exits += len(none)
            self.state[none] = PTE_LOCAL
            out.local_pages_allocated += len(none)
            self._charge(len(none))
        return out

    # -- timing ------------------------------------------------------------------------

    def access_time(self, outcome: EPTAccessOutcome,
                    concurrency: int = 1) -> float:
        """Convert an outcome into simulated seconds."""
        lat = self.latency
        t = outcome.vm_exits * lat.vm.vm_exit
        t += (outcome.cow_faults + outcome.local_pages_allocated
              - outcome.pages_fetched) * lat.mem.minor_fault
        if outcome.pages_fetched and self.pool is not None:
            t += self.pool.fetch_time(outcome.pages_fetched, concurrency)
        if outcome.direct_loads and self.pool is not None:
            t += self.pool.read_overhead(outcome.direct_loads)
        return max(t, 0.0)

    def _bounds_check(self, gpns: np.ndarray) -> None:
        if len(gpns) and (gpns.min() < 0 or gpns.max() >= self.npages):
            raise IndexError("guest page number out of range")

    def _charge(self, pages: int) -> None:
        self.local_pages += pages
        if self.on_local_delta is not None:
            self.on_local_delta(pages)
        if hooks.active is not None:
            hooks.active.on_local_charge(self, pages)

    def release_local(self) -> int:
        """Give back every locally-materialised page (guest teardown).

        Returns the page count released so the caller can uncharge its
        own accounting; the EPT's counter goes through ``_charge`` so
        ``on_local_delta`` observers see the release too.
        """
        pages = self.local_pages
        if pages:
            self._charge(-pages)
        return pages
