"""Overload + chaos experiment: the control plane vs a retry storm.

The robustness claim this benchmark backs: a rack driven far past its
CPU capacity — with a node crash in the middle of the surge — keeps a
bounded p99 for the invocations it *accepts* when the control plane is
armed, paying for it with an explicit, deterministic shed/abort
breakdown.  The uncontrolled baseline accepts everything and lets the
backlog stretch every invocation instead: nothing is dropped, but tail
latency collapses to queueing delay.

``run_overload_chaos`` runs three racks over the identical arrival
schedule and fault plan:

* ``uncontrolled`` — dispatch as before this module existed,
* ``controlled``   — admission limits, deadline-aware shedding,
  breakers, a retry budget and the timeout hierarchy armed,
* ``replay``       — the controlled run again; its report must be
  bit-identical (the determinism check CI asserts).

Reports include a backlog timeline sampled by virtual-time probes so
the collapse (and its absence) is visible, not just the percentiles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.control.config import ControlConfig, SLOTarget, TimeoutConfig
from repro.faults import FaultInjector, FaultPlan
from repro.mem.layout import GB
from repro.mem.pools import CXLPool
from repro.serverless.cluster import make_trenv_cluster
from repro.workloads.functions import function_by_name
from repro.workloads.synthetic import make_scaleout_uniform

#: Functions driven in the surge: mid-weight CPU profiles so a 10x
#: overload builds real queueing without the trace-replay cost of the
#: heaviest suite members dominating host time.
SURGE_FUNCTIONS: Tuple[str, ...] = ("CH", "CR", "IP", "PR")

#: Timeline sampling interval (simulated seconds).
PROBE_DT = 1.0


def surge_profile(quick: bool = False) -> Dict[str, float]:
    """The scenario knobs for one overload run.

    ``rate`` is chosen so offered CPU demand is ~10x what the rack can
    serve: mean exec_cpu of the surge suite is ~0.66 s, so at
    ``n_nodes * cores`` cores the sustainable rate is ``cores_total /
    0.66`` invocations/s and we drive ten times that.
    """
    if quick:
        return {"n_nodes": 2, "cores": 4, "duration": 12.0,
                "rate": 100.0, "crash_at": 5.0, "outage": 4.0}
    return {"n_nodes": 3, "cores": 4, "duration": 40.0,
            "rate": 180.0, "crash_at": 15.0, "outage": 10.0}


def overload_control(functions: Sequence[str] = SURGE_FUNCTIONS,
                     concurrency: int = 4,
                     queue_capacity: int = 8,
                     slo_threshold: float = 4.0) -> ControlConfig:
    """The ControlConfig armed for the controlled runs.

    Per-function concurrency keeps admitted CPU demand near capacity,
    the deadline shed policy drops what can no longer meet its
    per-invocation deadline, and the timeout hierarchy bounds every
    attempt.  SLO targets drive burn-rate accounting in the report.
    """
    return ControlConfig(
        default_concurrency=concurrency,
        queue_capacity=queue_capacity,
        shed_policy="deadline",
        timeouts=TimeoutConfig(per_attempt=2.5, per_invocation=4.0),
        slos={fn: SLOTarget(threshold=slo_threshold, objective=0.95)
              for fn in functions},
    )


def _surge_workload(seed: int, profile: Dict[str, float]):
    suite = [function_by_name(n) for n in SURGE_FUNCTIONS]
    return make_scaleout_uniform(seed=seed, functions=suite,
                                 duration=profile["duration"],
                                 rate=profile["rate"],
                                 keep_alive=600.0)


def _offered_load(workload, n_nodes: int, cores: int) -> float:
    """Offered CPU demand as a multiple of rack capacity."""
    demand = sum(function_by_name(e.function).exec_cpu
                 for e in workload.events)
    return demand / (workload.duration * n_nodes * cores)


def _failure_breakdown(failed: List[Tuple[str, float, str]]) -> Dict:
    """Split the failed list into shed/abort reason counters."""
    sheds: Dict[str, int] = {}
    aborts: Dict[str, int] = {}
    for _fn, _arrival, reason in failed:
        kind, _, cause = reason.partition(":")
        bucket = sheds if kind == "shed" else aborts
        bucket[cause] = bucket.get(cause, 0) + 1
    return {"sheds": dict(sorted(sheds.items())),
            "aborts": dict(sorted(aborts.items()))}


def _run_surge(seed: int, profile: Dict[str, float],
               control: Optional[ControlConfig]) -> Dict:
    """One rack through the surge + node crash; pure-deterministic dict."""
    cluster = make_trenv_cluster(int(profile["n_nodes"]), CXLPool(128 * GB),
                                 seed=seed, cores=int(profile["cores"]),
                                 control=control)
    workload = _surge_workload(seed, profile)
    plan = FaultPlan().node_crash(profile["crash_at"], "node1",
                                  duration=profile["outage"])
    injector = FaultInjector.for_cluster(cluster, plan).arm()

    # Virtual-time backlog probes: read-only callbacks, so the
    # simulated run is unchanged whether or not anyone looks.
    timeline: List[Dict] = []
    plane = cluster.control_plane

    def probe():
        entry = {
            "t": cluster.sim.now,
            "cpu_backlog": sum(p.node.cpu.load for p in cluster.platforms),
        }
        if plane is not None:
            entry["queued"] = plane.admission.total_queued_now()
            entry["shed"] = sum(plane.admission.shed_counts.values())
        timeline.append(entry)

    t = 0.0
    while t <= profile["duration"]:
        cluster.sim.call_at(t, probe)
        t += PROBE_DT

    result = cluster.run_workload(workload)
    recorder = result.recorder
    completed = len(recorder.measured())
    report = {
        "n_invocations": workload.n_invocations,
        "completed": completed,
        "failed": len(result.failed),
        "failure_breakdown": _failure_breakdown(result.failed),
        "p50_e2e": recorder.e2e_percentile(50),
        "p99_e2e": recorder.e2e_percentile(99),
        "max_e2e": max((r.e2e for r in recorder.results),
                       default=float("nan")),
        "redispatches": result.redispatches,
        "node_crashes": result.node_crashes,
        "fault_timeline": injector.timeline(),
        "backlog_timeline": timeline,
        "peak_cpu_backlog": max(e["cpu_backlog"] for e in timeline),
    }
    if result.control is not None:
        report["control"] = result.control
    return report


def run_overload_chaos(seed: int = 1, quick: bool = False,
                       jobs: int = 0) -> Dict:
    """10x CPU overload plus a mid-surge node crash, three ways.

    Returns the scenario parameters plus ``uncontrolled``,
    ``controlled`` and ``replay`` run reports, a ``deterministic`` flag
    (controlled == replay, compared structurally) and ``p99_bounded``
    (the controlled tail stayed under the per-invocation deadline while
    the uncontrolled tail blew past it).

    ``jobs`` is the unified worker-count option; overload runs arm the
    control plane and inject faults — both zero-lookahead couplings —
    so any requested parallelism falls back to serial execution and the
    report's ``parallel`` key records the resolved worker count and the
    fallback reasons.
    """
    from repro.control.plane import PARALLEL_UNSAFE_REASON
    from repro.serverless.partition import FAULTS_UNSAFE_REASON
    from repro.sim.parallel import resolve_jobs

    profile = surge_profile(quick)
    control = overload_control()
    workload = _surge_workload(seed, profile)
    n_jobs = resolve_jobs(jobs, int(profile["n_nodes"]))

    uncontrolled = _run_surge(seed, profile, None)
    controlled = _run_surge(seed, profile, overload_control())
    replay = _run_surge(seed, profile, overload_control())

    deadline = control.timeouts.per_invocation
    return {
        "schema": "trenv-repro-overload/1",
        "quick": quick,
        "seed": seed,
        "profile": profile,
        "workload": {
            "functions": list(SURGE_FUNCTIONS),
            "n_invocations": workload.n_invocations,
            "duration": workload.duration,
            "offered_load": _offered_load(workload,
                                          int(profile["n_nodes"]),
                                          int(profile["cores"])),
        },
        "control": {
            "default_concurrency": control.default_concurrency,
            "queue_capacity": control.queue_capacity,
            "shed_policy": control.shed_policy,
            "per_attempt": control.timeouts.per_attempt,
            "per_invocation": control.timeouts.per_invocation,
            "slo_threshold": control.slos[SURGE_FUNCTIONS[0]].threshold,
        },
        "parallel": {
            "jobs_requested": jobs,
            "jobs_resolved": n_jobs,
            "mode": "fallback" if n_jobs > 1 else "serial",
            "reasons": [PARALLEL_UNSAFE_REASON, FAULTS_UNSAFE_REASON],
        },
        "uncontrolled": uncontrolled,
        "controlled": controlled,
        "replay": replay,
        "deterministic": controlled == replay,
        "p99_bounded": (controlled["p99_e2e"] <= deadline
                        and uncontrolled["p99_e2e"] > 2 * deadline),
    }
