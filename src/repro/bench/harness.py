"""Shared helpers: platform construction, workload runs, table printing."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import TrEnvConfig
from repro.core.platform import TrEnvPlatform
from repro.mem.layout import GB
from repro.mem.pools import CXLPool, RDMAPool, TieredPool
from repro.node import Node
from repro.serverless.baselines import (CRIUPlatform, FaasdPlatform,
                                        FaasnapPlatform, ReapPlatform)
from repro.serverless.runner import RunResult, run_workload
from repro.workloads.synthetic import Workload

#: Container-side systems of §9.2–§9.5.
PLATFORM_NAMES = ("faasd", "criu", "reap+", "faasnap+", "t-cxl", "t-rdma")

POOL_BYTES = 128 * GB


def make_platform(name: str, seed: int = 1, cores: int = 64,
                  config: Optional[TrEnvConfig] = None):
    """Build a fresh node + platform by its paper name."""
    node = Node(cores=cores, seed=seed)
    if name == "faasd":
        return FaasdPlatform(node)
    if name == "criu":
        return CRIUPlatform(node)
    if name in ("reap", "reap+"):
        return ReapPlatform(node, netns_pool=name.endswith("+"))
    if name in ("faasnap", "faasnap+"):
        return FaasnapPlatform(node, netns_pool=name.endswith("+"))
    if name == "t-cxl":
        pool = CXLPool(POOL_BYTES, node.latency)
        return TrEnvPlatform(node, pool, config=config, name="t-cxl")
    if name == "t-rdma":
        pool = RDMAPool(POOL_BYTES, node.latency)
        return TrEnvPlatform(node, pool, config=config, name="t-rdma")
    if name == "t-tiered":
        pool = TieredPool(CXLPool(POOL_BYTES // 2, node.latency),
                          RDMAPool(POOL_BYTES // 2, node.latency),
                          hot_fraction=0.5)
        return TrEnvPlatform(node, pool, config=config, name="t-tiered")
    raise ValueError(f"unknown platform {name!r}; known: {PLATFORM_NAMES}")


def run_platform_workload(name: str, workload: Workload, seed: int = 1,
                          config: Optional[TrEnvConfig] = None) -> RunResult:
    platform = make_platform(name, seed=seed, config=config)
    return run_workload(platform, workload)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], width: int = 12) -> str:
    """Render an aligned text table for bench output."""
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = [title, "-" * max(len(title), width * len(headers))]
    lines.append("".join(f"{h:>{width}}" for h in headers))
    for row in rows:
        lines.append("".join(f"{fmt(c):>{width}}" for c in row))
    return "\n".join(lines)
