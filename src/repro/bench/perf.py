"""Tracked performance harness: host-side cost of the simulator itself.

Every other module under :mod:`repro.bench` measures *simulated* time —
the virtual-clock latencies the paper reports.  This one measures the
*host* cost of producing those numbers, so regressions in the
reproduction's own hot paths are visible and tracked:

1. **Attach latency vs image size** — wall-clock cost of
   ``clone_metadata`` + ``adopt_vma`` for every VMA of a template, with
   the copy-on-write clone path (:mod:`repro.mem.cow`) against the
   deep-copying baseline (``optflags.optimizations_disabled()``).  The
   fixed-VMA-count sweep isolates the per-page copy cost the CoW path
   eliminates: CoW attach time must stay flat as pages grow, mirroring
   TrEnv's O(metadata) ``mmt_attach`` (§5.1, Figure 11).  Real function
   layouts (DH, IR) are reported as well; those scale VMA count with
   image size, so constant per-VMA overhead dilutes the ratio.
2. **Cluster throughput** — invocations simulated per host-second for a
   fig17-style W2 diurnal run.
3. **Cluster scale-out** — a 10-node rack driving a 100k-invocation
   quantised trace through micro functions, so engine scheduling,
   dispatch, arrival spawning and metrics dominate the wall clock.  Run
   twice: with this PR's hot-path optimisations (calendar queue,
   dispatch indices, streaming metrics, batch arrivals) and with those
   four flags off (the pre-optimisation reference paths), reporting the
   speedup.
4. **Peak RSS** of the harness process.

Results land in ``BENCH_perf.json`` at the repo root (overwritten per
run; CI uploads it as an artifact without threshold gating).  Run via
``python -m repro.cli perf [--quick]``.
"""

from __future__ import annotations

import heapq
import json
import os
import resource
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import optflags
from repro.bench.harness import run_platform_workload
from repro.core.mm_template import (MMTemplateRegistry, MemoryTemplate,
                                    _ATTACH_PER_PAGE)
from repro.criu.images import SnapshotImage
from repro.mem.address_space import AddressSpace, PROT_READ, PROT_WRITE
from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool, DedupStore
from repro.serverless.metrics import LatencyRecorder
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel
from repro.workloads.functions import FunctionProfile, function_by_name
from repro.workloads.synthetic import make_scaleout_uniform, make_w2_diurnal

#: Page counts for the fixed-VMA-count sweep.  218880 pages is the
#: 855 MB IR image of Table 4 — the paper's largest container snapshot.
ATTACH_PAGE_COUNTS = (1024, 32768, 218880)
ATTACH_N_VMAS = 16


# ------------------------------------------------------------------ attach --

def _build_synthetic_template(total_pages: int,
                              n_vmas: int = ATTACH_N_VMAS) -> MemoryTemplate:
    """A template with a fixed VMA count, so attach cost scales only
    with pages (the quantity CoW is supposed to erase)."""
    registry = MMTemplateRegistry(Simulator())
    store = DedupStore(CXLPool(64 * GB))
    template = registry.mmt_create(f"synthetic-{total_pages}")
    per = total_pages // n_vmas
    cursor = 0
    for i in range(n_vmas):
        npages = per if i < n_vmas - 1 else total_pages - per * (n_vmas - 1)
        name = f"vma-{i}"
        registry.mmt_add_map(template, name, npages, PROT_READ | PROT_WRITE)
        content = np.arange(cursor, cursor + npages, dtype=np.int64)
        registry.mmt_setup_pt(template, name, store.store_image(content))
        template.find_vma(name).content[:] = content
        cursor += npages
    return template


def _build_function_template(fn_name: str) -> MemoryTemplate:
    registry = MMTemplateRegistry(Simulator())
    store = DedupStore(CXLPool(64 * GB))
    image = SnapshotImage.from_profile(function_by_name(fn_name))
    from repro.core.mm_template import build_template_for_function
    return build_template_for_function(registry, image, store)


def _time_attach(template: MemoryTemplate, iters: int) -> float:
    """Best-of-N wall-clock seconds for one full template attach."""
    best = float("inf")
    for _ in range(iters):
        t0 = time.perf_counter()
        space = AddressSpace("bench")
        for vma in template.vmas:
            space.adopt_vma(vma.clone_metadata())
        best = min(best, time.perf_counter() - t0)
    return best


def _attach_record(template: MemoryTemplate, iters: int) -> Dict:
    """CoW vs copying-baseline attach cost for one template."""
    with optflags.optimizations_disabled():
        copy_s = _time_attach(template, iters)
    # One warm attach first: building the frozen CoW bases is a one-time
    # per-template cost, exactly like the kernel sealing the template
    # page table; steady-state warm starts are what the paper plots.
    _time_attach(template, 1)
    cow_s = _time_attach(template, iters)
    lat = LatencyModel().mem
    simulated = (lat.mmt_attach_base
                 + lat.mmt_attach_per_vma * len(template.vmas)
                 + _ATTACH_PER_PAGE * template.total_pages)
    return {
        "pages": template.total_pages,
        "n_vmas": len(template.vmas),
        "copy_us": copy_s * 1e6,
        "cow_us": cow_s * 1e6,
        "speedup": copy_s / cow_s if cow_s > 0 else float("inf"),
        "simulated_ms": simulated * 1e3,
    }


def bench_attach(iters: int = 30,
                 page_counts: Sequence[int] = ATTACH_PAGE_COUNTS,
                 functions: Sequence[str] = ("DH", "IR")) -> Dict:
    sweep: List[Dict] = [
        _attach_record(_build_synthetic_template(pages), iters)
        for pages in page_counts
    ]
    images: List[Dict] = []
    for fn in functions:
        rec = _attach_record(_build_function_template(fn), iters)
        rec["function"] = fn
        images.append(rec)
    return {"fixed_vma_sweep": sweep, "function_images": images}


# -------------------------------------------------------------- throughput --

def bench_throughput(duration: float = 120.0,
                     platforms: Sequence[str] = ("t-cxl", "t-rdma"),
                     seed: int = 1) -> Dict:
    """Invocations simulated per host wall-clock second, W2 diurnal."""
    out: Dict = {"workload": "W2", "duration_s": duration, "platforms": {}}
    for name in platforms:
        workload = make_w2_diurnal(seed=seed, duration=duration,
                                   mean_rate=1.6, soft_cap_bytes=5 * GB)
        t0 = time.perf_counter()
        result = run_platform_workload(name, workload, seed=seed)
        wall = time.perf_counter() - t0
        n = len(result.recorder.results)
        out["platforms"][name] = {
            "invocations": n,
            "wall_s": wall,
            "inv_per_s": n / wall if wall > 0 else float("inf"),
        }
    return out


# ----------------------------------------------------------- cluster scale --

#: The four host-side hot paths introduced for trace-scale runs; turning
#: exactly these off reproduces the pre-optimisation reference paths
#: without also disabling earlier PRs' optimisations (CoW attach, trace
#: cache), which both sides of the comparison keep.
SCALE_FLAGS = ("timer_wheel", "dispatch_index", "stream_metrics",
               "batch_arrivals")


def micro_suite(n: int = 4):
    """Tiny functions for scale-out benchmarking.

    Minimal pages/CPU/IO per invocation so the per-invocation simulated
    work is negligible and the harness measures the framework's own
    hot paths: event scheduling, dispatch decisions, arrival spawning
    and metrics recording.
    """
    return tuple(FunctionProfile(
        name=f"micro{i}", lang="python",
        description="scale-out micro function",
        mem_bytes=1 * MB, n_threads=1, exec_cpu=0.0, io_time=0.0,
        touched_pages=0, write_fraction=0.0, loads_per_read_page=0.0,
        n_vmas=4, n_fds=1, runtime_shared_bytes=MB // 4,
        bootstrap_time=0.01, file_io_bytes=0,
        trace_jitter=0.0) for i in range(n))


def _run_cluster_scale(workload, suite, n_nodes: int, seed: int,
                       stream_only: bool) -> Dict:
    """One timed rack run; built fresh so construction-time optflag
    snapshots reflect the caller's flag context.

    Dispatch is round-robin, not the default warm-affinity: with
    zero-exec micro functions every load tie breaks to node0 and warm
    affinity then pins the entire trace there — a one-node rack in
    disguise.  Round-robin keeps all ``n_nodes`` hosts doing real work
    (the point of a scale-out bench) while staying deterministic; the
    warm-affinity/index decision path is measured separately in the
    ``dispatch`` hot-path section."""
    from repro.serverless.cluster import RoundRobin, make_trenv_cluster

    t0 = time.perf_counter()
    cluster = make_trenv_cluster(n_nodes, CXLPool(128 * GB), seed=seed,
                                 policy=RoundRobin())
    for platform in cluster.platforms:
        for profile in suite:
            platform.register_function(profile)
        if stream_only:
            # O(bins) metrics memory: the per-invocation result list is
            # the one remaining O(invocations) host allocation.
            platform.recorder = LatencyRecorder(keep_results=False)
    result = cluster.run_workload(workload)
    summary = result.recorder.summary()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "invocations": result.recorder.count(),
        "inv_per_s": (result.recorder.count() / wall
                      if wall > 0 else float("inf")),
        "p99_e2e": max(row["p99_e2e"] for row in summary.values()),
        "dispatch_counts": result.dispatch_counts,
    }


# Per arrival popped, the scheduler benches push this many same-tick
# chain entries (the dispatch -> invoke -> completion wake chain every
# invocation schedules at dt == 0).
_SCHED_CHAIN = 2

#: Hot-path sections are timed best-of-N (like the attach sweep): the
#: paths run for fractions of a second, where scheduler noise on a
#: shared host otherwise dominates the comparison.
_REPEATS = 7


def _best_s(fn, repeats: int = _REPEATS) -> float:
    """Best-of-N wall-clock seconds for one timed closure."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_scheduler(times) -> Dict:
    """Queue push/pop cost for the scenario's event stream shape.

    Each side replays the op sequence its own scenario generates.  The
    pre-PR path spawns every arrival wrapper at t=0 (the heap holds the
    whole schedule from the first tick), pops each wrapper step, and
    re-pushes it at its arrival time via ``Delay`` — then pays
    :data:`_SCHED_CHAIN` same-tick wake-ups per arrival, each an
    O(log depth) sift on a schedule-deep heap.  The batched calendar
    queue enqueues arrivals directly at their times (no spawn storm) and
    same-tick wake-ups are a deque append/popleft.
    """
    import itertools as _it

    from repro.sim.engine import _CalendarQueue

    time_list = [float(t) for t in times]

    def heap_run():
        # Entries are 5-tuples like the engine's real
        # (time, seq, task, value, epoch); the task slot carries the
        # replay kind.  kind 0: the wrapper's immediate first step at
        # spawn time (pre-PR spawns every arrival at t=0).
        heap: List = []
        seq = _it.count()
        for t in time_list:
            heapq.heappush(heap, (0.0, next(seq), 0, t, 0))
        while heap:
            entry = heapq.heappop(heap)
            kind = entry[2]
            if kind == 0:
                # Wrapper stepped: Delay re-push at the arrival time.
                heapq.heappush(heap, (entry[3], next(seq), 1, None, 0))
            elif kind == 1:
                for _ in range(_SCHED_CHAIN):
                    heapq.heappush(heap,
                                   (entry[0], next(seq), 2, None, 0))

    def wheel_run():
        # Mirrors the engine's usage exactly: pushes go through
        # _CalendarQueue.push (as _schedule does), pops drain the head
        # bucket inline (as Simulator.run does).
        wheel = _CalendarQueue()
        seq = _it.count()
        for t in time_list:
            wheel.push(t, (next(seq), None, 0, 0))
        times_heap = wheel._times
        buckets = wheel._buckets
        while times_heap:
            t = times_heap[0]
            bucket = buckets.get(t)
            if not bucket:
                heapq.heappop(times_heap)
                if bucket is not None:
                    del buckets[t]
                continue
            while bucket:
                _s, _task, kind, _e = bucket.popleft()
                if kind == 0:
                    for _ in range(_SCHED_CHAIN):
                        wheel.push(t, (next(seq), None, 1, 0))

    heap_s = _best_s(heap_run)
    wheel_s = _best_s(wheel_run)
    return {"reference_s": heap_s, "optimized_s": wheel_s,
            "speedup": heap_s / wheel_s if wheel_s > 0 else float("inf")}


def _bench_dispatch(workload, suite, n_nodes: int, seed: int) -> Dict:
    """Per-invocation dispatch decision: O(nodes) scan vs index pick.

    A short prefix of the workload runs for real first, so warm pools
    hold instances and the indices reflect a mid-run rack, then both
    paths replay the full trace's decision stream (same inputs, loads
    frozen — this times the decision, not the invocation)."""
    from repro.serverless.cluster import _DispatchIndex, make_trenv_cluster
    from repro.workloads.synthetic import Workload

    cluster = make_trenv_cluster(n_nodes, CXLPool(128 * GB), seed=seed)
    for platform in cluster.platforms:
        for profile in suite:
            platform.register_function(profile)
    prefix = Workload(name="prefix", events=workload.events[:512],
                      duration=workload.duration, soft_cap_bytes=None,
                      keep_alive=workload.keep_alive)
    cluster.run_workload(prefix)
    functions = [e.function for e in workload.events]
    policy = cluster.policy
    platforms = cluster.platforms

    def scan_run():
        for fn in functions:
            candidates = [p for p in platforms if not p.crashed]
            policy.pick(candidates, fn)

    index = cluster._index or _DispatchIndex(platforms)

    def index_run():
        for fn in functions:
            index.pick(policy, fn)

    scan_s = _best_s(scan_run)
    index_s = _best_s(index_run)

    for fn in functions[:64]:
        picked = index.pick(policy, fn)
        scanned = policy.pick([p for p in platforms if not p.crashed], fn)
        if picked is not scanned:
            raise RuntimeError("dispatch bench: index and scan disagree")
    return {"reference_s": scan_s, "optimized_s": index_s,
            "speedup": scan_s / index_s if index_s > 0 else float("inf")}


def _synth_results(workload) -> List:
    """Deterministic InvocationResults mirroring the scenario's stream."""
    from repro.serverless.metrics import InvocationResult
    kinds = ("warm", "restored", "cold")
    out = []
    for i, e in enumerate(workload.events):
        startup = 1e-4 + (i % 97) * 1e-5
        exec_ = 5e-3 + (i % 31) * 1e-4
        queue = (i % 11) * 1e-5
        out.append(InvocationResult(
            function=e.function, arrival=e.time,
            start_kind=kinds[i % len(kinds)], startup=startup,
            exec=exec_, e2e=queue + startup + exec_, queue=queue))
    return out


def _metrics_report(recorder) -> None:
    """The query load one sweep/bench report places on a recorder."""
    recorder.summary()
    recorder.e2e_percentile(50)
    recorder.e2e_percentile(99)
    recorder.startup_percentile(99)
    recorder.start_kind_counts()
    recorder.availability()


def _bench_metrics(workload, n_nodes: int) -> Dict:
    """Record + merge + report cost: exact result lists vs streaming.

    The exact regime appends every result, re-appends it at merge, and
    answers every percentile query with a full O(invocations) scan per
    (function, metric); the streaming regime folds samples into
    log-scale histograms and answers from bins."""
    results = _synth_results(workload)
    counts = []

    def exact_run():
        recorders = [LatencyRecorder() for _ in range(n_nodes)]
        merged = LatencyRecorder()
        for i, r in enumerate(results):
            recorders[i % n_nodes].record(r)
        for rec in recorders:
            merged.merge_from(rec)
        _metrics_report(merged)
        counts.append(merged.count())

    def stream_run():
        recorders = [LatencyRecorder(keep_results=False)
                     for _ in range(n_nodes)]
        merged = LatencyRecorder(keep_results=False)
        for i, r in enumerate(results):
            recorders[i % n_nodes].record(r)
        for rec in recorders:
            merged.merge_from(rec)
        _metrics_report(merged)
        counts.append(merged.count())

    with optflags.disabled("stream_metrics"):
        exact_s = _best_s(exact_run)
    stream_s = _best_s(stream_run)

    if len(set(counts)) != 1:
        raise RuntimeError("metrics bench: recorders disagree on count")
    return {"reference_s": exact_s, "optimized_s": stream_s,
            "speedup": exact_s / stream_s if stream_s > 0 else float("inf")}


def _bench_schedule_build(suite, seed: int, duration: float,
                          rate: float) -> Dict:
    """Building the arrival schedule: scalar RNG loop vs numpy arrays.

    The reference is the pre-PR construction idiom (one
    ``rng.exponential`` call and one event append per arrival, as the
    W1/W2 builders do); the optimised path is
    :func:`make_scaleout_uniform`'s bulk draws + cumulative sum."""
    import math as _math

    from repro.sim.rng import SeededRNG
    from repro.workloads.synthetic import ArrivalEvent, Workload

    quantum = 0.05
    built = []

    def scalar_run():
        rng = SeededRNG(seed, "scaleout")
        mean_gap = 1.0 / rate
        events = []
        t = 0.0
        while True:
            t += rng.exponential(mean_gap)
            if t >= duration:
                break
            snapped = _math.floor(t / quantum) * quantum
            fn = suite[rng.randint(0, len(suite))].name
            events.append(ArrivalEvent(snapped, fn))
        events.sort()
        built.append(Workload(name="scaleout", events=events,
                              duration=duration, soft_cap_bytes=None))

    def vector_run():
        built.append(make_scaleout_uniform(seed=seed, functions=suite,
                                           duration=duration, rate=rate,
                                           quantum=quantum))

    scalar_s = _best_s(scalar_run)
    vector_s = _best_s(vector_run)

    if abs(built[0].n_invocations - built[-1].n_invocations) > \
            0.02 * built[-1].n_invocations + 64:
        raise RuntimeError("schedule bench: event counts diverged")
    return {"reference_s": scalar_s, "optimized_s": vector_s,
            "speedup": (scalar_s / vector_s
                        if vector_s > 0 else float("inf"))}


def _bench_arrivals(times) -> Dict:
    """Spawning the arrival schedule: Delay wrappers vs spawn_at_many.

    The reference path is the pre-PR runner idiom verbatim: one wrapper
    generator per arrival that Delay-sleeps then ``yield from``-delegates
    to the invocation body (two generators, two queue entries and an
    extra engine step each) with a per-invocation task name; the batched
    path schedules the body directly at its arrival time."""
    from repro.sim.engine import Delay, Simulator

    def body():
        return
        yield  # pragma: no cover - makes this a generator

    time_list = [float(t) for t in times]

    def wrapper_run():
        sim = Simulator()

        def wrapper(t):
            yield Delay(max(0.0, t - sim.now))
            yield from body()

        for i, t in enumerate(time_list):
            sim.spawn(wrapper(t), name=f"inv-{i}")
        sim.run()

    def direct_run():
        sim = Simulator()
        sim.spawn_at_many((t, body()) for t in time_list)
        sim.run()

    with optflags.disabled("timer_wheel"):
        wrapper_s = _best_s(wrapper_run)
    direct_s = _best_s(direct_run)
    return {"reference_s": wrapper_s, "optimized_s": direct_s,
            "speedup": (wrapper_s / direct_s
                        if direct_s > 0 else float("inf"))}


def bench_cluster_scale(n_nodes: int = 10, invocations: int = 100_000,
                        seed: int = 3, quick: bool = False) -> Dict:
    """10 nodes x 100k invocations: optimised vs pre-PR hot paths.

    Two views of the same scenario:

    * ``hot_paths`` — each per-invocation hot path (event scheduling,
      dispatch decision, metrics recording/reporting, arrival spawning)
      replayed at the scenario's exact op counts, optimised
      implementation vs the flag-off reference.  ``speedup`` (the
      headline) is the aggregate ratio over the four paths.
    * ``end_to_end`` — the full rack run both ways.  This includes the
      un-gated simulation machinery (generator stepping, platform
      bookkeeping) that dominates wall clock and is identical on both
      sides, so its ratio is structurally diluted toward 1.
    """
    if quick:
        n_nodes, invocations = 4, 8_000
    # 16 distinct functions: trace-scale runs report per-function
    # percentiles, and the pre-PR exact recorder pays a full result-list
    # scan per (function, metric) query.
    suite = micro_suite(16)
    duration = 600.0
    rate = invocations / duration
    workload = make_scaleout_uniform(seed=seed, functions=suite,
                                     duration=duration, rate=rate,
                                     quantum=0.05)
    times = workload.times()

    optimized = _run_cluster_scale(workload, suite, n_nodes, seed,
                                   stream_only=True)
    with optflags.disabled(*SCALE_FLAGS):
        reference = _run_cluster_scale(workload, suite, n_nodes, seed,
                                       stream_only=False)
    if optimized["dispatch_counts"] != reference["dispatch_counts"]:
        raise RuntimeError(
            "cluster-scale bench: optimised and reference runs diverged")

    hot_paths = {
        "schedule_build": _bench_schedule_build(suite, seed, duration,
                                                rate),
        "scheduler": _bench_scheduler(times),
        "dispatch": _bench_dispatch(workload, suite, n_nodes, seed),
        "metrics": _bench_metrics(workload, n_nodes),
        "arrivals": _bench_arrivals(times),
    }
    ref_total = sum(p["reference_s"] for p in hot_paths.values())
    opt_total = sum(p["optimized_s"] for p in hot_paths.values())
    aggregate = ref_total / opt_total if opt_total > 0 else float("inf")

    return {
        "n_nodes": n_nodes,
        "scheduled_invocations": len(workload.events),
        "end_to_end": {
            "optimized": optimized,
            "reference": reference,
            "speedup": (reference["wall_s"] / optimized["wall_s"]
                        if optimized["wall_s"] > 0 else float("inf")),
        },
        "hot_paths": dict(sorted(hot_paths.items())),
        "hot_path_reference_s": ref_total,
        "hot_path_optimized_s": opt_total,
        "speedup": aggregate,
    }


# ----------------------------------------------------------------- parallel --

def bench_parallel(n_nodes: int = 10, invocations: int = 100_000,
                   seed: int = 3, quick: bool = False,
                   jobs_cap: int = 0) -> Dict:
    """Wall-clock scaling of the sharded PDES cluster runner.

    The ``cluster_scale`` scenario (10-node rack, 100k quantised
    invocations through micro functions, round-robin) run through
    :func:`~repro.serverless.parallel.run_cluster_parallel` at each
    worker count.  ``jobs=1`` takes the serial reference path; every
    other count must merge back to the same dispatch counts (checked
    here — full bit-identity of results and registries is pinned by the
    golden tests).  ``speedup`` is serial wall over parallel wall and
    ``efficiency`` divides it by the worker count; ``host_cpus`` is
    recorded because scaling is bounded by it — worker processes on
    fewer cores time-slice instead of overlapping, so efficiency on a
    starved host measures sharding overhead, not parallelism.
    """
    from repro.serverless.parallel import run_cluster_parallel
    from repro.serverless.partition import ClusterSpec

    if quick:
        n_nodes, invocations = 4, 8_000
    worker_counts = [1, 2] if quick else [1, 2, 4]
    if jobs_cap > 0:
        worker_counts = [j for j in worker_counts if j <= jobs_cap] or [1]

    suite = micro_suite(16)
    duration = 600.0
    rate = invocations / duration
    workload = make_scaleout_uniform(seed=seed, functions=suite,
                                     duration=duration, rate=rate,
                                     quantum=0.05)
    spec = ClusterSpec(n_nodes=n_nodes, seed=seed, policy="round-robin",
                       functions=suite, keep_results=False)

    serial_wall: Optional[float] = None
    reference_counts: Optional[Dict] = None
    lookahead: Optional[float] = None
    workers: List[Dict] = []
    for j in worker_counts:
        t0 = time.perf_counter()
        out = run_cluster_parallel(spec, workload, jobs=j)
        wall = time.perf_counter() - t0
        counts = out.result.dispatch_counts
        if reference_counts is None:
            reference_counts, serial_wall = counts, wall
        elif counts != reference_counts:
            raise RuntimeError(
                f"parallel bench: jobs={j} diverged from the serial "
                "reference dispatch counts")
        if out.report.mode == "parallel":
            lookahead = out.report.lookahead
        n = out.result.recorder.count()
        workers.append({
            "jobs": j,
            "mode": out.report.mode,
            "n_shards": out.report.n_shards,
            "n_windows": out.report.n_windows,
            "wall_s": wall,
            "inv_per_s": n / wall if wall > 0 else float("inf"),
            "speedup": serial_wall / wall if wall > 0 else float("inf"),
            "efficiency": (serial_wall / (wall * j)
                           if wall > 0 else float("inf")),
        })
    return {
        "n_nodes": n_nodes,
        "scheduled_invocations": len(workload.events),
        "host_cpus": os.cpu_count() or 1,
        "lookahead_s": lookahead,
        "workers": workers,
    }


# ------------------------------------------------------------ obs overhead --

def bench_obs_overhead(quick: bool = False, seed: int = 5) -> Dict:
    """Wall-clock cost of repro.obs at each level on a rack-scale run.

    Four timed runs of the same scenario: a baseline with no observer
    installed, a second un-observed run (their ratio bounds repeat-run
    noise — the "< 2% when off" acceptance check, since obs-off code is
    just the never-taken ``hooks.active is not None`` branches), then
    ``metrics`` and ``spans``.  Simulated results are asserted identical
    across all four.
    """
    from repro.obs.observer import observed

    if quick:
        n_nodes, invocations, repeats = 2, 2_000, 1
    else:
        n_nodes, invocations, repeats = 4, 8_000, 3
    suite = micro_suite(8)
    duration = 120.0
    rate = invocations / duration
    workload = make_scaleout_uniform(seed=seed, functions=suite,
                                     duration=duration, rate=rate,
                                     quantum=0.05)

    checks: List = []

    def run_at(level: str) -> Dict:
        with observed(level):
            out = _run_cluster_scale(workload, suite, n_nodes, seed,
                                     stream_only=True)
        checks.append((out["invocations"], out["dispatch_counts"]))
        return out

    # Warm discard run: imports, trace caches, allocator warm-up.
    run_at("off")
    checks.clear()

    baseline_s = _best_s(lambda: run_at("off"), repeats)
    off_s = _best_s(lambda: run_at("off"), repeats)
    metrics_s = _best_s(lambda: run_at("metrics"), repeats)
    spans_s = _best_s(lambda: run_at("spans"), repeats)
    if len(set(map(str, checks))) != 1:
        raise RuntimeError("obs-overhead bench: simulated results diverged "
                           "across observability levels")

    def pct(a: float, b: float) -> float:
        return max(0.0, (a / b - 1.0) * 100.0) if b > 0 else 0.0

    return {
        "n_nodes": n_nodes,
        "scheduled_invocations": len(workload.events),
        "repeats": repeats,
        "baseline_s": baseline_s,
        "off_s": off_s,
        "metrics_s": metrics_s,
        "spans_s": spans_s,
        "off_overhead_pct": pct(off_s, baseline_s),
        "metrics_overhead_pct": pct(metrics_s, off_s),
        "spans_overhead_pct": pct(spans_s, off_s),
    }


# --------------------------------------------------------------------- rss --

def peak_rss_mb() -> float:
    """Peak resident set of this process (ru_maxrss is KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":   # bytes on macOS
        return rss / (1024 * 1024)
    return rss / 1024


# -------------------------------------------------------------- entrypoint --

def run_perf(quick: bool = False,
             out_path: Optional[str] = "BENCH_perf.json",
             jobs: int = 0) -> Dict:
    """Run the full harness; write ``out_path`` (unless None); return it.

    ``jobs`` (the unified worker-count option) caps the worker counts
    the ``parallel`` section sweeps; 0 keeps the profile's default
    ladder (1/2/4 full, 1/2 quick).
    """
    iters = 5 if quick else 30
    duration = 30.0 if quick else 120.0
    platforms = ("t-cxl",) if quick else ("t-cxl", "t-rdma")
    report = {
        "schema": "trenv-repro-perf/1",
        "quick": quick,
        "attach": bench_attach(iters=iters),
        "throughput": bench_throughput(duration=duration,
                                       platforms=platforms),
        "cluster_scale": bench_cluster_scale(quick=quick),
        "parallel": bench_parallel(quick=quick, jobs_cap=jobs),
        "obs_overhead": bench_obs_overhead(quick=quick),
        "peak_rss_mb": peak_rss_mb(),
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report
