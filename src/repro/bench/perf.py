"""Tracked performance harness: host-side cost of the simulator itself.

Every other module under :mod:`repro.bench` measures *simulated* time —
the virtual-clock latencies the paper reports.  This one measures the
*host* cost of producing those numbers, so regressions in the
reproduction's own hot paths are visible and tracked:

1. **Attach latency vs image size** — wall-clock cost of
   ``clone_metadata`` + ``adopt_vma`` for every VMA of a template, with
   the copy-on-write clone path (:mod:`repro.mem.cow`) against the
   deep-copying baseline (``optflags.optimizations_disabled()``).  The
   fixed-VMA-count sweep isolates the per-page copy cost the CoW path
   eliminates: CoW attach time must stay flat as pages grow, mirroring
   TrEnv's O(metadata) ``mmt_attach`` (§5.1, Figure 11).  Real function
   layouts (DH, IR) are reported as well; those scale VMA count with
   image size, so constant per-VMA overhead dilutes the ratio.
2. **Cluster throughput** — invocations simulated per host-second for a
   fig17-style W2 diurnal run.
3. **Peak RSS** of the harness process.

Results land in ``BENCH_perf.json`` at the repo root (overwritten per
run; CI uploads it as an artifact without threshold gating).  Run via
``python -m repro.cli perf [--quick]``.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import optflags
from repro.bench.harness import run_platform_workload
from repro.core.mm_template import (MMTemplateRegistry, MemoryTemplate,
                                    _ATTACH_PER_PAGE)
from repro.criu.images import SnapshotImage
from repro.mem.address_space import AddressSpace, PROT_READ, PROT_WRITE
from repro.mem.layout import GB
from repro.mem.pools import CXLPool, DedupStore
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel
from repro.workloads.functions import function_by_name
from repro.workloads.synthetic import make_w2_diurnal

#: Page counts for the fixed-VMA-count sweep.  218880 pages is the
#: 855 MB IR image of Table 4 — the paper's largest container snapshot.
ATTACH_PAGE_COUNTS = (1024, 32768, 218880)
ATTACH_N_VMAS = 16


# ------------------------------------------------------------------ attach --

def _build_synthetic_template(total_pages: int,
                              n_vmas: int = ATTACH_N_VMAS) -> MemoryTemplate:
    """A template with a fixed VMA count, so attach cost scales only
    with pages (the quantity CoW is supposed to erase)."""
    registry = MMTemplateRegistry(Simulator())
    store = DedupStore(CXLPool(64 * GB))
    template = registry.mmt_create(f"synthetic-{total_pages}")
    per = total_pages // n_vmas
    cursor = 0
    for i in range(n_vmas):
        npages = per if i < n_vmas - 1 else total_pages - per * (n_vmas - 1)
        name = f"vma-{i}"
        registry.mmt_add_map(template, name, npages, PROT_READ | PROT_WRITE)
        content = np.arange(cursor, cursor + npages, dtype=np.int64)
        registry.mmt_setup_pt(template, name, store.store_image(content))
        template.find_vma(name).content[:] = content
        cursor += npages
    return template


def _build_function_template(fn_name: str) -> MemoryTemplate:
    registry = MMTemplateRegistry(Simulator())
    store = DedupStore(CXLPool(64 * GB))
    image = SnapshotImage.from_profile(function_by_name(fn_name))
    from repro.core.mm_template import build_template_for_function
    return build_template_for_function(registry, image, store)


def _time_attach(template: MemoryTemplate, iters: int) -> float:
    """Best-of-N wall-clock seconds for one full template attach."""
    best = float("inf")
    for _ in range(iters):
        t0 = time.perf_counter()
        space = AddressSpace("bench")
        for vma in template.vmas:
            space.adopt_vma(vma.clone_metadata())
        best = min(best, time.perf_counter() - t0)
    return best


def _attach_record(template: MemoryTemplate, iters: int) -> Dict:
    """CoW vs copying-baseline attach cost for one template."""
    with optflags.optimizations_disabled():
        copy_s = _time_attach(template, iters)
    # One warm attach first: building the frozen CoW bases is a one-time
    # per-template cost, exactly like the kernel sealing the template
    # page table; steady-state warm starts are what the paper plots.
    _time_attach(template, 1)
    cow_s = _time_attach(template, iters)
    lat = LatencyModel().mem
    simulated = (lat.mmt_attach_base
                 + lat.mmt_attach_per_vma * len(template.vmas)
                 + _ATTACH_PER_PAGE * template.total_pages)
    return {
        "pages": template.total_pages,
        "n_vmas": len(template.vmas),
        "copy_us": copy_s * 1e6,
        "cow_us": cow_s * 1e6,
        "speedup": copy_s / cow_s if cow_s > 0 else float("inf"),
        "simulated_ms": simulated * 1e3,
    }


def bench_attach(iters: int = 30,
                 page_counts: Sequence[int] = ATTACH_PAGE_COUNTS,
                 functions: Sequence[str] = ("DH", "IR")) -> Dict:
    sweep: List[Dict] = [
        _attach_record(_build_synthetic_template(pages), iters)
        for pages in page_counts
    ]
    images: List[Dict] = []
    for fn in functions:
        rec = _attach_record(_build_function_template(fn), iters)
        rec["function"] = fn
        images.append(rec)
    return {"fixed_vma_sweep": sweep, "function_images": images}


# -------------------------------------------------------------- throughput --

def bench_throughput(duration: float = 120.0,
                     platforms: Sequence[str] = ("t-cxl", "t-rdma"),
                     seed: int = 1) -> Dict:
    """Invocations simulated per host wall-clock second, W2 diurnal."""
    out: Dict = {"workload": "W2", "duration_s": duration, "platforms": {}}
    for name in platforms:
        workload = make_w2_diurnal(seed=seed, duration=duration,
                                   mean_rate=1.6, soft_cap_bytes=5 * GB)
        t0 = time.perf_counter()
        result = run_platform_workload(name, workload, seed=seed)
        wall = time.perf_counter() - t0
        n = len(result.recorder.results)
        out["platforms"][name] = {
            "invocations": n,
            "wall_s": wall,
            "inv_per_s": n / wall if wall > 0 else float("inf"),
        }
    return out


# --------------------------------------------------------------------- rss --

def peak_rss_mb() -> float:
    """Peak resident set of this process (ru_maxrss is KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":   # bytes on macOS
        return rss / (1024 * 1024)
    return rss / 1024


# -------------------------------------------------------------- entrypoint --

def run_perf(quick: bool = False,
             out_path: Optional[str] = "BENCH_perf.json") -> Dict:
    """Run the full harness; write ``out_path`` (unless None); return it."""
    iters = 5 if quick else 30
    duration = 30.0 if quick else 120.0
    platforms = ("t-cxl",) if quick else ("t-cxl", "t-rdma")
    report = {
        "schema": "trenv-repro-perf/1",
        "quick": quick,
        "attach": bench_attach(iters=iters),
        "throughput": bench_throughput(duration=duration,
                                       platforms=platforms),
        "peak_rss_mb": peak_rss_mb(),
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report
