"""Benchmark harness: one experiment per paper table/figure.

Each ``run_*`` function reproduces the data behind one table or figure
and returns a plain dict (rows/series) that the ``benchmarks/`` suite
prints and asserts shape properties on.  ``scale`` parameters shrink
workloads for CI; the paper-scale defaults are documented per function.
"""

from repro.bench.harness import (format_table, make_platform,
                                 PLATFORM_NAMES, run_platform_workload)
from repro.bench import experiments_container as container
from repro.bench import experiments_agents as agents
from repro.bench import experiments_faults as faults
from repro.bench import experiments_overload as overload

__all__ = [
    "PLATFORM_NAMES",
    "agents",
    "container",
    "faults",
    "overload",
    "format_table",
    "make_platform",
    "run_platform_workload",
]
