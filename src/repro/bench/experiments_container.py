"""Container-side experiments: Table 1, Figures 4, 10, 17–22."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.container.rootfs import FunctionOverlayPool, RootfsBuilder
from repro.container.runtime import ContainerRuntime
from repro.core.config import TrEnvConfig
from repro.core.mm_template import MMTemplateRegistry, build_template_for_function
from repro.criu.images import SnapshotImage
from repro.bench.harness import make_platform, run_platform_workload
from repro.kernel.mounts import MountTable
from repro.mem.address_space import AddressSpace
from repro.mem.layout import GB
from repro.mem.pools import CXLPool, DedupStore
from repro.node import Node
from repro.serverless.runner import run_workload
from repro.sim.engine import Delay
from repro.sim.rng import SeededRNG
from repro.workloads.azure import make_azure_workload
from repro.workloads.functions import FUNCTIONS, function_by_name
from repro.workloads.huawei import make_huawei_workload
from repro.workloads.synthetic import make_w1_bursty, make_w2_diurnal


# ---------------------------------------------------------------- Table 1 --

def run_table1_components() -> Dict[str, Dict[str, float]]:
    """Per-component sandbox creation cost vs TrEnv's solution."""
    out: Dict[str, Dict[str, float]] = {}

    # Network namespace: alone, and at 15-way concurrency (§3.3).
    node = Node()
    t = node.sim.run_process(node.namespaces.create_netns())
    single = node.sim.now
    node2 = Node()
    finishes = []

    def one():
        yield node2.namespaces.create_netns()
        finishes.append(node2.sim.now)

    for _ in range(15):
        node2.sim.spawn(one())
    node2.sim.run()
    out["network"] = {"create_single": single,
                      "create_15way": max(finishes),
                      "trenv_reuse": 0.0}

    # Rootfs: cold build vs TrEnv reconfiguration.
    node = Node()
    builder = RootfsBuilder(node.sim, node.latency)
    table = MountTable(node.sim, node.latency)

    def cold():
        yield builder.build_cold(table, "JS")
        return node.sim.now

    cold_t = node.sim.run_process(cold())
    pool = FunctionOverlayPool(node.sim, node.latency)
    pool.prewarm("DH")

    def reconfig():
        start = node.sim.now
        ov = yield pool.acquire("DH")
        yield builder.swap_function_overlay(table, ov)
        return node.sim.now - start

    reconfig_t = node.sim.run_process(reconfig())
    out["rootfs"] = {"create": cold_t, "trenv_reconfig": reconfig_t}

    # Cgroup: create, migrate, clone_into, reconfigure.
    node = Node()

    def cgroup_ops():
        t0 = node.sim.now
        cg = yield node.cgroups.create("bench")
        create = node.sim.now - t0
        t0 = node.sim.now
        yield node.cgroups.migrate(1, cg)
        migrate = node.sim.now - t0
        t0 = node.sim.now
        yield node.cgroups.clone_into(2, cg)
        clone = node.sim.now - t0
        t0 = node.sim.now
        from repro.kernel.cgroup import CgroupLimits
        yield node.cgroups.reconfigure(cg, CgroupLimits())
        reconf = node.sim.now - t0
        return create, migrate, clone, reconf

    create, migrate, clone, reconf = node.sim.run_process(cgroup_ops())
    out["cgroup"] = {"create": create, "migrate": migrate,
                     "trenv_clone_into": clone, "trenv_reconfigure": reconf}

    # Other namespaces: <1 ms.
    node = Node()
    node.sim.run_process(node.namespaces.create_light_set())
    out["other_ns"] = {"create": node.sim.now}

    # Process memory: copy restore vs mmt_attach (JS, 95 MB).
    profile = function_by_name("JS")
    image = SnapshotImage.from_profile(profile)
    node = Node()

    def copy_restore():
        yield node.criu.restore_full(image)
        return node.sim.now

    copy_t = node.sim.run_process(copy_restore())
    node2 = Node()
    registry = MMTemplateRegistry(node2.sim, node2.latency)
    store = DedupStore(CXLPool(8 * GB, node2.latency))
    template = build_template_for_function(registry, image, store)

    def attach():
        space = AddressSpace("bench")
        t0 = node2.sim.now
        yield registry.mmt_attach(template, space)
        return node2.sim.now - t0

    attach_t = node2.sim.run_process(attach())
    out["process_memory"] = {"criu_copy": copy_t, "trenv_mmt_attach": attach_t}

    # Other process state (threads/fds): handled by CRIU either way.
    lat = node.latency.proc
    misc = (lat.criu_misc_base + lat.criu_misc_per_thread * profile.n_threads
            + lat.criu_misc_per_fd * profile.n_fds)
    out["process_other"] = {"criu_misc": misc}
    return out


# ---------------------------------------------------------------- Figure 4 --

def run_fig4_breakdown() -> Dict[str, Dict[str, float]]:
    """Cold-start vs CRIU latency breakdown for a Python function (JS)."""
    profile = function_by_name("JS")
    out: Dict[str, Dict[str, float]] = {}

    # Cold start path, component by component.
    node = Node()
    runtime = ContainerRuntime(node)

    def cold():
        t0 = node.sim.now
        sb = yield runtime.create_sandbox_cold(profile.name)
        sandbox_t = node.sim.now - t0
        t0 = node.sim.now
        yield runtime.bootstrap_function(sb, profile)
        bootstrap_t = node.sim.now - t0
        return sandbox_t, bootstrap_t

    sandbox_t, bootstrap_t = node.sim.run_process(cold())
    out["cold_start"] = {"sandbox": sandbox_t, "bootstrap": bootstrap_t,
                         "total": sandbox_t + bootstrap_t}

    # CRIU restore path.
    node = Node()
    runtime = ContainerRuntime(node)
    image = SnapshotImage.from_profile(profile)

    def criu():
        t0 = node.sim.now
        sb = yield runtime.create_sandbox_cold(profile.name)
        sandbox_t = node.sim.now - t0
        t0 = node.sim.now
        yield Delay(node.latency.mem.mmap_syscall * len(image.vmas))
        yield Delay(node.latency.memory_copy(image.nbytes))
        mem_t = node.sim.now - t0
        t0 = node.sim.now
        proc = yield node.procs.spawn(profile.name)
        yield node.criu.restore_process_state(proc, image)
        other_t = node.sim.now - t0
        return sandbox_t, mem_t, other_t

    sandbox_t, mem_t, other_t = node.sim.run_process(criu())
    out["criu"] = {"sandbox": sandbox_t, "mem": mem_t, "other": other_t,
                   "total": sandbox_t + mem_t + other_t}

    # TrEnv repurpose path for contrast.
    result = run_fig21_ablation(functions=("JS",))
    out["trenv"] = {"total": result["JS"]["mm-template"]["startup"]}
    return out


# ---------------------------------------------------------------- Figure 10 --

def run_fig10_readonly(seed: int = 1) -> Dict[str, Dict[str, float]]:
    """Read-only vs written page ratio per function after one invocation."""
    rng = SeededRNG(seed, "fig10")
    out: Dict[str, Dict[str, float]] = {}
    for profile in FUNCTIONS:
        trace = profile.make_trace(rng, invocation=0)
        touched = trace.touched_pages
        written = trace.distinct_writes
        out[profile.name] = {
            "touched_pages": touched,
            "written_pages": written,
            "read_only_ratio": 1.0 - written / touched,
        }
    return out


# ------------------------------------------------------- Figures 17 + 18a --

def run_fig17_fig18(workload_name: str = "W1", seed: int = 1,
                    duration: float = 1500.0, burst_size: int = 10,
                    platforms: Sequence[str] = ("faasd", "criu", "reap+",
                                                "faasnap+", "t-cxl",
                                                "t-rdma")) -> Dict:
    """E2E latency CDFs and peak memory for one synthetic workload."""
    makers = {
        "W1": lambda: make_w1_bursty(seed=seed, duration=duration,
                                     burst_size=burst_size),
        # W2's tight memory cap is scaled with the workload so the
        # eviction pressure of the paper's 32 GB / 4k-invocation setup is
        # preserved at bench scale.
        "W2": lambda: make_w2_diurnal(seed=seed, duration=duration,
                                      mean_rate=1.6,
                                      soft_cap_bytes=5 * GB),
    }
    out: Dict = {"workload": workload_name, "platforms": {}}
    for name in platforms:
        result = run_platform_workload(name, makers[workload_name](),
                                       seed=seed)
        rec = result.recorder
        out["platforms"][name] = {
            "p50_ms": rec.e2e_percentile(50) * 1e3,
            "p99_ms": rec.e2e_percentile(99) * 1e3,
            "peak_memory_mb": result.peak_memory_mb,
            "per_function": rec.summary(),
            "cdf": rec.cdf(),
            "start_kinds": rec.start_kind_counts(),
        }
    return out


# ---------------------------------------------------------------- Fig 18b --

def run_fig18b_scaling(function: str = "IR", instances: int = 50,
                       platforms: Sequence[str] = ("reap+", "faasnap+",
                                                   "t-cxl", "t-rdma"),
                       seed: int = 1) -> Dict[str, float]:
    """Memory after starting N concurrent instances of one function."""
    out: Dict[str, float] = {}
    for name in platforms:
        platform = make_platform(name, seed=seed)
        platform.register_function(function_by_name(function))
        node = platform.node

        def one():
            yield platform.invoke(function)

        for _ in range(instances):
            node.sim.spawn(one())
        node.sim.run()
        out[name] = node.memory.peak_bytes / (1 << 20)
    return out


# ---------------------------------------------------------------- Figure 19 --

def run_fig19_noconc(platforms: Sequence[str] = ("criu", "reap+", "faasnap+",
                                                 "t-cxl", "t-rdma"),
                     seed: int = 1,
                     functions: Optional[Sequence[str]] = None) -> Dict:
    """Uncontended E2E latency, split into startup (hatched) and exec."""
    functions = functions or [f.name for f in FUNCTIONS]
    out: Dict = {}
    for fn in functions:
        out[fn] = {}
        for name in platforms:
            platform = make_platform(name, seed=seed)
            platform.register_function(function_by_name(fn))

            def driver():
                # Prime once, then measure a steady-state start past the
                # keep-alive window (the paper measures after warm-up).
                yield platform.invoke(fn)
                yield Delay(platform.keep_alive * 1.2)
                r = yield platform.invoke(fn)
                return r

            r = platform.node.sim.run_process(driver())
            out[fn][name] = {"startup": r.startup, "exec": r.exec,
                             "e2e": r.e2e, "kind": r.start_kind}
    return out


# ---------------------------------------------------------------- Figure 20 --

def run_fig20_traces(trace: str = "azure", seed: int = 1,
                     duration: float = 1500.0,
                     platforms: Sequence[str] = ("reap+", "faasnap+",
                                                 "t-cxl", "t-rdma")) -> Dict:
    """P99 E2E per function for industry traces, normalised to REAP+."""
    makers = {"azure": make_azure_workload, "huawei": make_huawei_workload}
    out: Dict = {"trace": trace, "platforms": {}, "normalized": {}}
    per_platform: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in platforms:
        result = run_platform_workload(name, makers[trace](seed=seed,
                                                           duration=duration),
                                       seed=seed)
        rec = result.recorder
        per_fn = {}
        for fn in rec.functions():
            per_fn[fn] = {
                "p99_e2e": rec.e2e_percentile(99, fn),
                "p99_startup": rec.startup_percentile(99, fn),
            }
        per_platform[name] = per_fn
        out["platforms"][name] = {
            "peak_memory_mb": result.peak_memory_mb,
            "per_function": per_fn,
            "cpu_utilization": result.cpu_utilization,
        }
    base = per_platform.get("reap+", {})
    for name, per_fn in per_platform.items():
        out["normalized"][name] = {
            fn: per_fn[fn]["p99_e2e"] / base[fn]["p99_e2e"]
            for fn in per_fn if fn in base and base[fn]["p99_e2e"] > 0}
    return out


# ---------------------------------------------------------------- Figure 21 --

def run_fig21_ablation(functions: Sequence[str] = ("IR", "JS"),
                       seed: int = 1) -> Dict:
    """Stepwise optimisation ladder: CRIU -> Reconfig -> Cgroup -> full."""
    out: Dict = {}
    for fn in functions:
        out[fn] = {}
        for label, config in TrEnvConfig.ablation_steps():
            platform = make_platform("t-cxl", seed=seed, config=config)
            platform.register_function(function_by_name(fn))
            node = platform.node

            def driver():
                # Prime a sandbox so the repurposing path is exercised,
                # then measure a start past the keep-alive window.
                yield platform.invoke(fn)
                yield Delay(platform.keep_alive * 1.2)
                r = yield platform.invoke(fn)
                return r

            r = node.sim.run_process(driver())
            out[fn][label] = {"startup": r.startup, "exec": r.exec,
                              "e2e": r.e2e, "kind": r.start_kind}
    return out


# ---------------------------------------------------------------- Figure 22 --

def run_fig22_cxl_vs_rdma(seed: int = 1, concurrency: int = 16,
                          rounds: int = 4,
                          functions: Optional[Sequence[str]] = None) -> Dict:
    """Execution latency of T-CXL vs T-RDMA under concurrent load."""
    functions = functions or [f.name for f in FUNCTIONS]
    out: Dict = {}
    for fn in functions:
        out[fn] = {}
        for name in ("t-cxl", "t-rdma"):
            platform = make_platform(name, seed=seed)
            platform.register_function(function_by_name(fn))
            node = platform.node
            execs: List[float] = []

            def one():
                r = yield platform.invoke(fn)
                execs.append(r.exec)

            def round_driver():
                for _ in range(rounds):
                    waiters = [node.sim.spawn(one())
                               for _ in range(concurrency)]
                    yield node.sim.all_of(waiters)

            node.sim.run_process(round_driver())
            out[fn][name] = {
                "p75_exec": float(np.percentile(execs, 75)),
                "p99_exec": float(np.percentile(execs, 99)),
            }
        out[fn]["speedup_p75"] = (out[fn]["t-rdma"]["p75_exec"]
                                  / out[fn]["t-cxl"]["p75_exec"])
        out[fn]["speedup_p99"] = (out[fn]["t-rdma"]["p99_exec"]
                                  / out[fn]["t-cxl"]["p99_exec"])
    return out
