"""Chaos experiments: availability of the disaggregated rack under faults.

The paper's reliability argument (§8.1) is that losing the remote pool
must degrade startup latency — to the NAS tier or, at worst, the local
copy-based restore every baseline already pays — never correctness.
``run_chaos_recovery`` drives a TrEnv rack through a mid-workload RDMA
pool outage and reports availability plus the latency cost of surviving
it; running it twice with the same seed must reproduce the identical
fault timeline and counts.
"""

from __future__ import annotations

from typing import Dict

from repro.faults import FaultInjector, FaultPlan
from repro.mem.layout import GB
from repro.mem.pools import NASPool, RDMAPool
from repro.serverless.cluster import make_trenv_cluster
from repro.workloads.functions import function_by_name
from repro.workloads.synthetic import make_w1_bursty


def _run_rack(seed: int, n_nodes: int, plan: FaultPlan) -> Dict:
    pool = RDMAPool(128 * GB)
    nas = NASPool(128 * GB)
    cluster = make_trenv_cluster(n_nodes, pool, seed=seed,
                                 fallback_pool=nas)
    workload = make_w1_bursty(seed=seed, duration=700.0, burst_size=6,
                              bursts_per_function=1)
    injector = FaultInjector.for_cluster(cluster, plan).arm()
    result = cluster.run_workload(workload)
    latency = cluster.platforms[0].node.latency
    biggest = max(function_by_name(f).mem_bytes
                  for f in workload.functions_used())
    return {
        "n_invocations": workload.n_invocations,
        "availability": result.availability,
        "p50_e2e": result.recorder.e2e_percentile(50),
        "p99_e2e": result.recorder.e2e_percentile(99),
        "max_e2e": max((r.e2e for r in result.recorder.results),
                       default=float("nan")),
        "timeline": injector.timeline(),
        "pool_faults": sum(p.pool_fault_count for p in cluster.platforms),
        "degraded_acquires": sum(p.degraded_acquires
                                 for p in cluster.platforms),
        "redispatches": result.redispatches,
        # Cost of one full copy-based restore of the largest image — the
        # bottom rung of the degradation ladder, i.e. the baseline
        # cold-start class every invocation can always fall back to.
        "cold_copy_bound": latency.memory_copy(biggest),
    }


def run_chaos_recovery(seed: int = 1, n_nodes: int = 2,
                       kill_at: float = 30.0,
                       outage: float = 400.0) -> Dict[str, Dict]:
    """TrEnv rack vs a seeded RDMA-pool outage of ``outage`` seconds.

    Returns ``clean`` (no faults), ``faulty`` (the outage) and
    ``replay`` (the identical outage again, for determinism checks).
    """
    def outage_plan() -> FaultPlan:
        return FaultPlan().pool_offline(kill_at, "rdma", duration=outage)

    return {
        "clean": _run_rack(seed, n_nodes, FaultPlan()),
        "faulty": _run_rack(seed, n_nodes, outage_plan()),
        "replay": _run_rack(seed, n_nodes, outage_plan()),
    }
