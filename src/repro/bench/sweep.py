"""Parallel experiment sweep: (seed, policy, node count, trace) grids.

Scaling the reproduction to trace scale means running *many* cluster
configurations, and each configuration is an independent simulation with
its own :class:`~repro.sim.engine.Simulator`.  The sweep runner fans a
configuration grid across a ``multiprocessing`` pool — one shard per
configuration, each building its world from the configuration's seed —
and merges the shard reports into ``BENCH_sweep.json``.

Shards are **bit-identical to serial execution** by construction: a
shard's simulated outcome is a pure function of its
:class:`SweepConfig` (all randomness flows through
:class:`~repro.sim.rng.SeededRNG` keyed by the config's seed), so the
process boundary can only change host-side timings, which are reported
under a separate ``host`` key and excluded from determinism
comparisons.  ``tests/integration/test_golden_determinism.py`` holds
the regression gate.

Run via ``python -m repro.cli sweep [--quick] [--jobs N]``.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.mem.layout import GB
from repro.sim.parallel import resolve_jobs

#: Dispatch policies the sweep exercises, by their registry names.
POLICY_NAMES = ("warm-affinity", "least-loaded", "round-robin")

#: Trace generators the sweep can replay.
TRACE_NAMES = ("W1", "W2", "azure", "huawei", "scaleout")


@dataclass(frozen=True)
class SweepConfig:
    """One sweep shard: everything needed to rebuild its world."""

    seed: int
    policy: str
    n_nodes: int
    trace: str
    duration: float = 300.0
    #: Arrival rate for the synthetic "scaleout" trace (ignored by the
    #: paper traces, which carry their own rate structure).
    rate: float = 120.0

    @property
    def config_id(self) -> str:
        return (f"{self.trace}-{self.policy}-n{self.n_nodes}"
                f"-s{self.seed}")


def default_grid(quick: bool = False) -> List[SweepConfig]:
    """The stock grid: every policy over a couple of seeds and shapes."""
    if quick:
        return [
            SweepConfig(seed=1, policy="warm-affinity", n_nodes=2,
                        trace="W2", duration=120.0),
            SweepConfig(seed=2, policy="least-loaded", n_nodes=2,
                        trace="scaleout", duration=60.0, rate=30.0),
        ]
    configs: List[SweepConfig] = []
    for trace in ("W2", "azure", "scaleout"):
        for policy in POLICY_NAMES:
            for seed in (1, 2):
                configs.append(SweepConfig(
                    seed=seed, policy=policy, n_nodes=4, trace=trace,
                    duration=300.0, rate=60.0))
    return configs


def _make_policy(name: str):
    from repro.serverless.cluster import make_policy
    return make_policy(name)


def _make_workload(config: SweepConfig):
    from repro.mem.layout import GB as _GB
    from repro.workloads.azure import make_azure_workload
    from repro.workloads.huawei import make_huawei_workload
    from repro.workloads.synthetic import (make_scaleout_uniform,
                                           make_w1_bursty, make_w2_diurnal)
    if config.trace == "W1":
        return make_w1_bursty(seed=config.seed, duration=config.duration)
    if config.trace == "W2":
        return make_w2_diurnal(seed=config.seed, duration=config.duration,
                               mean_rate=1.6, soft_cap_bytes=5 * _GB)
    if config.trace == "azure":
        return make_azure_workload(seed=config.seed,
                                   duration=config.duration)
    if config.trace == "huawei":
        return make_huawei_workload(seed=config.seed,
                                    duration=config.duration)
    if config.trace == "scaleout":
        return make_scaleout_uniform(seed=config.seed,
                                     duration=config.duration,
                                     rate=config.rate)
    raise ValueError(
        f"unknown trace {config.trace!r}; known: {TRACE_NAMES}")


def run_config(config: SweepConfig, obs_level: str = "off") -> Dict:
    """One shard: build a cluster from the config, run it, summarise.

    The ``results`` block is a pure function of ``config``; ``host``
    carries wall-clock only and is excluded from determinism checks.
    With ``obs_level != "off"`` a fresh observer runs for the shard and
    its registry is serialised under ``obs`` — registry merge is
    associative, so the parent's merged totals equal a serial run's.
    """
    from repro.mem.pools import CXLPool
    from repro.obs.observer import observed
    from repro.serverless.cluster import make_trenv_cluster

    t0 = time.perf_counter()
    workload = _make_workload(config)
    cluster = make_trenv_cluster(config.n_nodes, CXLPool(128 * GB),
                                 seed=config.seed,
                                 policy=_make_policy(config.policy))
    with observed(obs_level) as obs:
        result = cluster.run_workload(workload)
    wall = time.perf_counter() - t0
    recorder = result.recorder
    report = {
        "id": config.config_id,
        "config": dict(sorted(asdict(config).items())),
        "results": {
            "invocations": recorder.count(),
            "p50_e2e": recorder.e2e_percentile(50),
            "p99_e2e": recorder.e2e_percentile(99),
            "p99_startup": recorder.startup_percentile(99),
            "start_kinds": recorder.start_kind_counts(),
            "dispatch_counts": result.dispatch_counts,
            "availability": dict(sorted(result.availability.items())),
            "total_peak_mb": result.total_peak_mb,
            "pool_used_mb": result.pool_used_mb,
            "duration": result.duration,
        },
        "host": {"wall_s": wall},
    }
    if obs is not None:
        report["obs"] = obs.registry.to_dict()
    return report


def run_sweep(configs: Optional[Sequence[SweepConfig]] = None,
              jobs: int = 0, quick: bool = False,
              out_path: Optional[str] = "BENCH_sweep.json",
              obs_level: str = "off") -> Dict:
    """Fan ``configs`` over a process pool; merge into one report.

    ``jobs=0`` sizes the pool to the CPU count (capped by the shard
    count); ``jobs=1`` runs serially in-process, which the determinism
    test uses as the reference ordering.  With ``obs_level != "off"``
    each shard observes itself and the per-shard registries are merged
    (in sorted shard-id order) under the report's ``obs`` key; merge is
    associative, so parallel totals equal a serial run's.
    """
    shards = list(configs) if configs is not None else default_grid(quick)
    ids = [c.config_id for c in shards]
    if len(set(ids)) != len(ids):
        raise ValueError("sweep grid has duplicate config ids")
    t0 = time.perf_counter()
    n = resolve_jobs(jobs, len(shards))
    if n == 1:
        reports = [run_config(c, obs_level=obs_level) for c in shards]
    else:
        with multiprocessing.Pool(n) as pool:
            reports = pool.starmap(run_config,
                                   [(c, obs_level) for c in shards])
    wall = time.perf_counter() - t0
    merged = {
        "schema": "trenv-repro-sweep/1",
        "quick": quick,
        "n_configs": len(shards),
        "shards": {r["id"]: {"config": r["config"],
                             "results": r["results"]}
                   for r in sorted(reports, key=lambda r: r["id"])},
        "host": {
            "wall_s": wall,
            "per_shard_wall_s": {r["id"]: r["host"]["wall_s"]
                                 for r in sorted(reports,
                                                 key=lambda r: r["id"])},
        },
    }
    if obs_level != "off":
        from repro.obs.registry import MetricsRegistry
        combined = MetricsRegistry()
        for r in sorted(reports, key=lambda r: r["id"]):
            combined.merge_from(MetricsRegistry.from_dict(r["obs"]))
        merged["obs"] = {
            "level": obs_level,
            "registry": combined.to_dict(),
            "totals": combined.totals(),
        }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return merged
