"""Agent-side experiments: Tables 2–3, Figures 3, 23–26."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

import numpy as np

from repro.agents.cost import PriceConfig, cost_table
from repro.agents.llm import LLMTrace
from repro.agents.platform import (AgentPlatform, E2BPlatform,
                                   E2BPlusPlatform, TrEnvVMPlatform,
                                   VanillaCHPlatform)
from repro.agents.spec import AGENTS, agent_by_name, browser_agents
from repro.node import Node

_AGENT_PLATFORMS: Dict[str, Type[AgentPlatform]] = {
    "e2b": E2BPlatform,
    "e2b+": E2BPlusPlatform,
    "ch": VanillaCHPlatform,
    "trenv": TrEnvVMPlatform,
}


def make_agent_platform(name: str, node: Optional[Node] = None,
                        cores: int = 64, seed: int = 3,
                        browser_sharing: Optional[bool] = None
                        ) -> AgentPlatform:
    node = node or Node(cores=cores, seed=seed)
    if name == "trenv-s":
        return TrEnvVMPlatform(node, browser_sharing=True)
    cls = _AGENT_PLATFORMS.get(name)
    if cls is None:
        raise ValueError(f"unknown agent platform {name!r}")
    return cls(node, browser_sharing=browser_sharing)


# ---------------------------------------------------------------- Table 2 --

def run_table2_agents() -> Dict[str, Dict[str, float]]:
    """Per-agent E2E latency, memory and CPU time, uncontended."""
    out: Dict[str, Dict[str, float]] = {}
    for spec in AGENTS:
        platform = make_agent_platform("e2b")
        node = platform.node

        def driver():
            r = yield platform.run_agent(spec)
            return r

        r = node.sim.run_process(driver())
        out[spec.name] = {
            "e2e_s": r.e2e,
            "e2e_paper_s": spec.e2e_target,
            "memory_mb": spec.mem_bytes / (1 << 20),
            "peak_node_mb": node.memory.peak_bytes / (1 << 20),
            "cpu_time_s": r.active_time,
            "cpu_time_paper_s": spec.cpu_time,
            "cpu_utilization": r.active_time / max(r.e2e, 1e-9),
        }
    return out


# ---------------------------------------------------------------- Table 3 --

def run_table3_tokens() -> Dict[str, Dict[str, int]]:
    """Token usage per agent, reconstructed from the replay traces."""
    out: Dict[str, Dict[str, int]] = {}
    for spec in AGENTS:
        trace = LLMTrace.from_spec(spec)
        out[spec.name] = {
            "input_tokens": trace.total_input_tokens,
            "output_tokens": trace.total_output_tokens,
            "paper_input": spec.input_tokens,
            "paper_output": spec.output_tokens,
            "n_calls": len(trace.calls),
        }
    return out


# ---------------------------------------------------------------- Figure 3 --

def run_fig3_cost(prices: Optional[PriceConfig] = None
                  ) -> Dict[str, Dict[str, float]]:
    """Relative serverless cost vs LLM cost per agent."""
    return cost_table(prices or PriceConfig())


# ---------------------------------------------------------------- Figure 23 --

def run_fig23_startup(platforms: Sequence[str] = ("e2b", "e2b+", "ch",
                                                  "trenv"),
                      concurrency: int = 10) -> Dict:
    """Blackjack startup latency: sequential and concurrent."""
    spec = agent_by_name("blackjack")
    out: Dict = {"single": {}, "concurrent": {}}
    for name in platforms:
        platform = make_agent_platform(name)
        node = platform.node

        def driver():
            r = yield platform.run_agent(spec)
            return r

        r = node.sim.run_process(driver())
        out["single"][name] = r.startup

        platform = make_agent_platform(name)
        node = platform.node
        startups: List[float] = []

        def one():
            r = yield platform.run_agent(spec)
            startups.append(r.startup)

        for _ in range(concurrency):
            node.sim.spawn(one())
        node.sim.run()
        out["concurrent"][name] = {
            "mean": float(np.mean(startups)),
            "max": float(np.max(startups)),
        }
    return out


# ---------------------------------------------------------------- Figure 24 --

def run_fig24_browser_sharing(instances: int = 40, cores: int = 4,
                              agents: Optional[Sequence[str]] = None,
                              seed: int = 3) -> Dict:
    """E2E latency of browser agents with and without sharing, under
    CPU overcommitment (paper: 200 instances / 20 cores => 10x).

    The defaults keep the same 10x overcommit ratio at smaller scale.
    """
    agents = agents or [a.name for a in browser_agents()]
    out: Dict = {}
    for agent in agents:
        spec = agent_by_name(agent)
        out[agent] = {}
        for label, sharing in (("trenv", False), ("trenv-s", True)):
            node = Node(cores=cores, seed=seed)
            platform = TrEnvVMPlatform(node, browser_sharing=sharing,
                                       prewarmed_jailers=instances)
            e2es: List[float] = []

            def one():
                r = yield platform.run_agent(spec)
                e2es.append(r.startup + r.e2e)

            for _ in range(instances):
                node.sim.spawn(one())
            node.sim.run()
            out[agent][label] = {
                "mean": float(np.mean(e2es)),
                "p99": float(np.percentile(e2es, 99)),
                "cdf": (np.sort(e2es),
                        np.arange(1, len(e2es) + 1) / len(e2es)),
            }
        base = out[agent]["trenv"]
        shared = out[agent]["trenv-s"]
        out[agent]["p99_reduction"] = 1.0 - shared["p99"] / base["p99"]
        out[agent]["mean_reduction"] = 1.0 - shared["mean"] / base["mean"]
    return out


# ---------------------------------------------------------------- Figure 25 --

def run_fig25_agent_memory(platforms: Sequence[str] = ("e2b", "e2b+",
                                                       "trenv-s"),
                           instances: int = 10,
                           agents: Optional[Sequence[str]] = None,
                           seed: int = 3) -> Dict:
    """Peak node memory running N concurrent instances of each agent."""
    agents = agents or [a.name for a in AGENTS]
    out: Dict = {}
    for agent in agents:
        spec = agent_by_name(agent)
        out[agent] = {}
        for name in platforms:
            platform = make_agent_platform(name, cores=64, seed=seed)
            node = platform.node

            def one():
                yield platform.run_agent(spec)

            for _ in range(instances):
                node.sim.spawn(one())
            node.sim.run()
            out[agent][name] = node.memory.peak_bytes / (1 << 20)
        if "e2b" in platforms:
            base = out[agent]["e2b"]
            for name in platforms:
                out[agent][f"saving_vs_e2b:{name}"] = 1.0 - out[agent][name] / base
    return out


# ---------------------------------------------------------------- Figure 26 --

def run_fig26_memory_timeline(agents: Sequence[str] = ("map-reduce",
                                                       "blog-summary"),
                              platforms: Sequence[str] = ("e2b", "trenv-s"),
                              seed: int = 3) -> Dict:
    """Memory usage over one agent execution + usage×duration integral."""
    out: Dict = {}
    for agent in agents:
        spec = agent_by_name(agent)
        out[agent] = {}
        for name in platforms:
            platform = make_agent_platform(name, seed=seed)
            node = platform.node

            def driver():
                yield platform.run_agent(spec)

            node.sim.run_process(driver())
            out[agent][name] = {
                "timeline": node.memory.timeline_mb(),
                "integral_mb_s": node.memory.integral_mb_seconds(),
                "peak_mb": node.memory.peak_bytes / (1 << 20),
            }
        if "e2b" in platforms and "trenv-s" in platforms:
            base = out[agent]["e2b"]["integral_mb_s"]
            ours = out[agent]["trenv-s"]["integral_mb_s"]
            out[agent]["cost_saving"] = 1.0 - ours / base
    return out
