"""Merge per-shard span traces into one serial-equivalent trace.

A parallel cluster run (:func:`repro.serverless.parallel
.run_cluster_parallel`) executes each node-group shard in its own
worker process, so each worker records its own :class:`SpanTracer`.
This module folds those shard traces back into a single tracer whose
Chrome-trace export is **byte-identical** to the serial run's — the
trace joins the result, the records and the registry as the fourth
bit-identical artifact.

Why this works without coordination:

* **pids** — every worker rebuilds the full rack and prebinds node
  pids in rack order (:meth:`SpanTracer.prebind_nodes`), so the pid
  map is a pure function of the spec; the merge just checks the maps
  agree.
* **lanes (tids)** — lane allocation is per-pid (free-lane heap +
  high-water mark), and a shard drives exactly the serial per-node
  event subsequence, so the lanes a shard assigns on its own nodes
  equal the serial run's.
* **trace ids** — the only shard-local state.  Serially, ids are
  handed out in task wake order: events sorted by ``(max(0, time),
  event index)``.  A shard hands ids to its *owned* events in the
  same wake order, so shard-local id ``k+1`` maps to the serial id
  of the shard's ``k``-th owned event in wake order.  The remap is
  computed from the workload + plan alone — no runtime channel.

Anything that breaks these invariants raises :class:`SpanMergeError`;
the runner surfaces its message as the explicit span-merge fallback
reason and re-runs the serial reference path for the trace.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.trace import SpanTracer


class SpanMergeError(RuntimeError):
    """Why shard traces cannot be merged (the surfaced fallback reason)."""


def serial_trace_ids(event_times: Sequence[float]) -> List[int]:
    """Event index -> the trace id the *serial* run assigns that event.

    The serial dispatcher spawns one task per event, in event order;
    tasks wake (and call ``begin``) in ``(scheduled time, spawn seq)``
    order, and an event scheduled in the past wakes "now" — hence the
    ``max(0, time)`` clamp (both serial and shard clocks start at 0).
    """
    order = sorted(range(len(event_times)),
                   key=lambda i: (max(0.0, event_times[i]), i))
    ids = [0] * len(order)
    for pos, idx in enumerate(order):
        ids[idx] = pos + 1
    return ids


def shard_remaps(event_times: Sequence[float],
                 plan) -> List[Dict[int, int]]:
    """Per shard: {shard-local trace id: serial trace id}.

    ``plan`` is a :class:`~repro.serverless.partition.ParallelPlan`;
    the remap depends only on the workload's event times and the
    plan's static event->node assignment.
    """
    serial_ids = serial_trace_ids(event_times)
    remaps: List[Dict[int, int]] = []
    for shard in range(plan.n_shards):
        owned = plan.owned_events(shard)
        wake = sorted(owned,
                      key=lambda i: (max(0.0, event_times[i]), i))
        remaps.append({k + 1: serial_ids[idx]
                       for k, idx in enumerate(wake)})
    return remaps


def _canon(args: Optional[Dict]) -> str:
    return json.dumps(args, sort_keys=True) if args else ""


def merge_shard_tracers(tracer_dicts: Sequence[Optional[Dict]],
                        remaps: Sequence[Dict[int, int]]) -> SpanTracer:
    """Fold shard ``SpanTracer.to_dict()`` snapshots into one tracer.

    Raises :class:`SpanMergeError` when the shard snapshots violate a
    merge invariant (missing tracer, disagreeing pid maps, a shard
    whose begin count differs from the events the plan says it owns).
    The merged tracer's records are sorted by a content key so the
    result is identical for any shard count that merges at all.
    """
    if not tracer_dicts:
        raise SpanMergeError("no shard traces to merge")
    if len(tracer_dicts) != len(remaps):
        raise SpanMergeError(
            f"{len(tracer_dicts)} shard traces but {len(remaps)} remap "
            f"tables")
    for shard, data in enumerate(tracer_dicts):
        if data is None:
            raise SpanMergeError(f"shard {shard} recorded no span trace")
    procs0 = [list(p) for p in tracer_dicts[0]["procs"]]
    for shard, data in enumerate(tracer_dicts):
        procs = [list(p) for p in data["procs"]]
        if procs != procs0:
            raise SpanMergeError(
                f"shard {shard} pid map differs from shard 0 "
                f"(prebind invariant broken)")

    merged = SpanTracer()
    merged._procs = {name: int(pid) for name, pid in procs0}
    lane_high: Dict[int, int] = {}
    for shard, (data, remap) in enumerate(zip(tracer_dicts, remaps)):
        n_local = int(data["next_id"]) - 1
        if n_local != len(remap):
            raise SpanMergeError(
                f"shard {shard} began {n_local} traces but the plan "
                f"owns {len(remap)} events")

        def rid(local_id: int) -> int:
            if local_id == 0:
                return 0
            mapped = remap.get(int(local_id))
            if mapped is None:
                raise SpanMergeError(
                    f"shard {shard} referenced unknown local trace id "
                    f"{local_id}")
            return mapped

        for t0, t1, pid, tid, name, cat, trace_id, args in data["spans"]:
            merged.spans.append((t0, t1, int(pid), int(tid), name, cat,
                                 rid(trace_id), args))
        for t, pid, tid, name, args in data["instants"]:
            if args and "trace_id" in args:
                args = dict(args)
                args["trace_id"] = rid(args["trace_id"])
            merged.instants.append((t, int(pid), int(tid), name, args))
        for t0, t1, kind, src, dst, args in data["links"]:
            merged.links.append((t0, t1, kind, rid(src), rid(dst), args))
        for pid, high in data["lane_high"]:
            pid = int(pid)
            lane_high[pid] = max(lane_high.get(pid, 0), int(high))

    merged._lane_high = dict(sorted(lane_high.items()))
    merged._next_id = 1 + sum(len(r) for r in remaps)
    # Content-key sort: shard concatenation order must not leak into
    # the merged object (2-shard and 4-shard merges of the same run
    # must be identical tracers; exports sort content-purely anyway).
    merged.spans.sort(
        key=lambda s: (s[0], s[1], s[2], s[3], s[4], s[5], s[6],
                       _canon(s[7])))
    merged.instants.sort(
        key=lambda s: (s[0], s[1], s[2], s[3], _canon(s[4])))
    merged.links.sort(
        key=lambda s: (s[0], s[1], s[2], s[3], s[4], _canon(s[5])))
    return merged
