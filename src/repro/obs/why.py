"""The "why" engine: where did the latency go, and why is the tail slow?

Backs ``python -m repro.cli why {w2,cluster,overload}``.  Runs a
scenario with span tracing on, extracts every invocation's critical
path (:mod:`repro.obs.causal`), and renders three readings:

* **blame profile** — exact per-phase / per-node / per-start-kind /
  per-pool-tier attribution over all completed invocations; the grand
  total equals the sum of recorded e2e latencies bit-exactly;
* **tail cohort diff** — the p99 cohort's mean blame against the p50
  cohort's, phase by phase: the phases with the largest positive delta
  *are* the reason the tail is slow, stated as a verdict line;
* **folded stacks** — ``kind;node;phase <virtual µs>`` lines, ready
  for any flame-graph renderer.

Everything is a pure function of the trace: cohort membership uses
deterministic percentile indices (no interpolation), all aggregation
is exact rational arithmetic, and repeated runs of the same scenario
produce byte-identical reports.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.mem.layout import GB
from repro.obs.causal import (BlameProfile, CausalGraph, CriticalPath,
                              folded_stacks)

#: Scenarios the why subcommand can explain.
WHY_SCENARIOS = ("w2", "cluster", "overload")


# -- tail cohorts --------------------------------------------------------------


def percentile_index(n: int, q: float) -> int:
    """Deterministic nearest-rank index: smallest i with (i+1)/n >= q."""
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    return min(n - 1, max(0, math.ceil(q * n) - 1))


def _cohort_summary(cohort: List[CriticalPath]) -> Dict:
    profile = BlameProfile()
    for path in cohort:
        profile.add_path(path)
    n = max(1, profile.n)
    return {
        "n": profile.n,
        "mean_e2e_s": float(profile.total / n),
        "mean_blame_s": {phase: float(profile.by_phase[phase] / n)
                         for phase in sorted(profile.by_phase)},
        "mean_pre_wait_s": {kind: float(profile.pre_waits[kind] / n)
                            for kind in sorted(profile.pre_waits)},
    }


def tail_cohort_diff(paths: List[CriticalPath],
                     tail_q: float = 0.99) -> Dict:
    """Compare the p99 cohort's mean blame against the p50 cohort's.

    Cohorts are defined by deterministic nearest-rank indices over the
    e2e-sorted paths (ties broken by trace id): the baseline cohort is
    everything at or below the median, the tail cohort everything at
    or above the ``tail_q`` rank.
    """
    if not paths:
        return {"n": 0, "tail_q": tail_q, "baseline": _cohort_summary([]),
                "tail": _cohort_summary([]), "delta_s": {},
                "culprits": [], "verdict": "no completed invocations"}
    ordered = sorted(paths, key=lambda p: (p.e2e, p.trace_id))
    n = len(ordered)
    baseline = ordered[:percentile_index(n, 0.50) + 1]
    tail = ordered[percentile_index(n, tail_q):]
    base_sum = _cohort_summary(baseline)
    tail_sum = _cohort_summary(tail)
    delta: Dict[str, float] = {}
    for phase in sorted(set(base_sum["mean_blame_s"])
                        | set(tail_sum["mean_blame_s"])):
        delta[phase] = (tail_sum["mean_blame_s"].get(phase, 0.0)
                        - base_sum["mean_blame_s"].get(phase, 0.0))
    culprits = sorted((p for p in delta if delta[p] > 0),
                      key=lambda p: (-delta[p], p))
    if culprits:
        top = culprits[0]
        verdict = (f"p{tail_q * 100:g} invocations spend "
                   f"{delta[top] * 1e3:+.3f} ms more in {top!r} than "
                   f"the p50 cohort "
                   f"({tail_sum['mean_e2e_s'] * 1e3:.3f} ms vs "
                   f"{base_sum['mean_e2e_s'] * 1e3:.3f} ms mean e2e)")
    else:
        verdict = "tail and baseline cohorts have identical blame"
    return {"n": n, "tail_q": tail_q, "baseline": base_sum,
            "tail": tail_sum, "delta_s": delta, "culprits": culprits,
            "verdict": verdict}


# -- report assembly -----------------------------------------------------------


def why_report(tracer, scenario: str, meta: Optional[Dict] = None,
               tail_q: float = 0.99) -> Dict:
    """The full why-report for one traced run (JSON-safe)."""
    graph = CausalGraph(tracer)
    paths = graph.all_paths()
    profile = BlameProfile()
    exact = True
    for path in paths:
        profile.add_path(path)
        exact = exact and path.total_s() == path.e2e
    slowest = sorted(paths, key=lambda p: (-p.e2e, p.trace_id))[:5]
    report: Dict = {
        "scenario": scenario,
        "invocations": len(paths),
        #: Every path's blame sums bit-exactly to its measured e2e —
        #: the acceptance invariant, asserted here on every run.
        "blame_sums_exact": exact,
        "blame": profile.to_dict(),
        "tail": tail_cohort_diff(paths, tail_q=tail_q),
        "slowest": [{
            "trace_id": p.trace_id, "function": p.function,
            "kind": p.kind, "node": p.node, "e2e_s": p.e2e,
            "blame_s": p.blame_s(),
            "pre_wait_s": {k: float(v)
                           for k, v in sorted(p.pre_waits.items())},
        } for p in slowest],
        "folded_stacks": folded_stacks(paths),
    }
    if meta:
        report.update({k: meta[k] for k in sorted(meta)})
    return report


def render_text(report: Dict) -> str:
    """The report as an aligned, human-readable text page."""
    lines: List[str] = []
    lines.append(f"why {report['scenario']}: "
                 f"{report['invocations']} invocations, "
                 f"blame sums exact: {report['blame_sums_exact']}")
    blame = report["blame"]
    lines.append("")
    header = f"{'phase':<22} {'total s':>12} {'share %':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    total = blame["total_s"] or 1.0
    for phase in sorted(blame["by_phase_s"],
                        key=lambda p: -blame["by_phase_s"][p]):
        seconds = blame["by_phase_s"][phase]
        lines.append(f"{phase:<22} {seconds:>12.6f} "
                     f"{100 * seconds / total:>9.2f}")
    for title, key in (("node", "by_node_s"), ("start kind", "by_kind_s"),
                       ("pool tier", "by_pool_s"),
                       ("pre-dispatch wait", "pre_wait_s")):
        section = blame[key]
        if not section:
            continue
        lines.append("")
        lines.append(f"{title:<22} {'total s':>12}")
        for name in sorted(section, key=lambda k: -section[k]):
            lines.append(f"{name:<22} {section[name]:>12.6f}")
    tail = report["tail"]
    lines.append("")
    lines.append(f"tail cohort (p{tail['tail_q'] * 100:g} vs p50):")
    for phase in tail["culprits"]:
        lines.append(f"  {phase:<20} {tail['delta_s'][phase] * 1e3:+10.3f} "
                     f"ms/invocation")
    lines.append(f"  verdict: {tail['verdict']}")
    if report["slowest"]:
        lines.append("")
        lines.append("slowest invocations:")
        for entry in report["slowest"]:
            top = max(entry["blame_s"], key=lambda k: entry["blame_s"][k])
            lines.append(
                f"  #{entry['trace_id']} {entry['function']} "
                f"[{entry['kind']} on {entry['node']}] "
                f"e2e {entry['e2e_s'] * 1e3:.3f} ms, "
                f"mostly {top} ({entry['blame_s'][top] * 1e3:.3f} ms)")
    return "\n".join(lines) + "\n"


# -- scenario runners ----------------------------------------------------------


def _why_w2(duration: float, seed: int, platform: str) -> tuple:
    from repro.bench.harness import run_platform_workload
    from repro.obs.observer import observed
    from repro.workloads.synthetic import make_w2_diurnal

    workload = make_w2_diurnal(seed=seed, duration=duration,
                               mean_rate=1.6, soft_cap_bytes=5 * GB)
    with observed("spans") as obs:
        run_platform_workload(platform, workload, seed=seed)
    return obs.tracer, {"label": f"{platform}/W2", "span_merge": "serial"}


def _why_cluster(duration: float, seed: int, nodes: int,
                 jobs: int) -> tuple:
    from repro.serverless.parallel import run_cluster_parallel
    from repro.serverless.partition import ClusterSpec
    from repro.workloads.synthetic import make_w2_diurnal

    workload = make_w2_diurnal(seed=seed, duration=duration, mean_rate=1.6)
    spec = ClusterSpec(n_nodes=nodes, seed=seed)
    outcome = run_cluster_parallel(spec, workload, jobs=jobs,
                                   obs_level="spans")
    return outcome.tracer, {"label": f"t-cxl-rack{nodes}/W2",
                            "span_merge": outcome.span_merge,
                            "parallel": outcome.report.to_dict()}


def _why_overload(duration: float, seed: int, nodes: int) -> tuple:
    """A control-armed surge: admission queues and slot hand-offs.

    The concurrency cap forces real queue waits, so the trace carries
    ``admission_wait`` / ``slot_grant`` links and the report shows
    pre-dispatch blame — the control-plane reading the plain cluster
    scenario cannot produce.  Control-armed runs are serial by
    definition (the partition planner proves why), so no jobs knob.
    """
    from repro.control.config import ControlConfig
    from repro.serverless.parallel import run_cluster_parallel
    from repro.serverless.partition import ClusterSpec
    from repro.workloads.synthetic import make_scaleout_uniform

    workload = make_scaleout_uniform(seed=seed, duration=duration,
                                     rate=40.0)
    spec = ClusterSpec(n_nodes=nodes, seed=seed,
                       control=ControlConfig(default_concurrency=4))
    outcome = run_cluster_parallel(spec, workload, jobs=1,
                                   obs_level="spans")
    return outcome.tracer, {"label": f"controlled-rack{nodes}/surge",
                            "span_merge": outcome.span_merge,
                            "parallel": outcome.report.to_dict()}


def run_why_scenario(scenario: str, duration: float = 60.0, seed: int = 1,
                     nodes: int = 3, jobs: int = 1,
                     platform: str = "t-cxl",
                     tail_q: float = 0.99) -> Dict:
    """Run ``scenario`` traced and produce its why-report."""
    if scenario == "w2":
        tracer, meta = _why_w2(duration, seed, platform)
    elif scenario == "cluster":
        tracer, meta = _why_cluster(duration, seed, nodes, jobs)
    elif scenario == "overload":
        tracer, meta = _why_overload(duration, seed, nodes)
    else:
        raise ValueError(
            f"unknown why scenario {scenario!r}; known: {WHY_SCENARIOS}")
    meta.update({"duration_s": duration, "seed": seed})
    return why_report(tracer, scenario, meta=meta, tail_q=tail_q)
