"""Exporters: Chrome-trace JSON (Perfetto), phase tables, Prometheus.

Chrome Trace Event Format reference: ``ph:"X"`` complete events carry
``ts``/``dur`` in **microseconds** — here *virtual* microseconds, so a
Perfetto timeline of a run reads directly in simulated time.  ``ph:"M"``
metadata names the process (track) and thread (lane) rows; ``ph:"i"``
instants mark point events (faults, crashes, VM lifecycle).

Every iteration below is over sorted keys (nodes, functions, metric
names): export output is a deterministic function of the recorded data,
never of dict insertion order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.trace import CONTROL_TID, SpanTracer


def chrome_trace_events(tracer: SpanTracer) -> List[Dict]:
    """The ``traceEvents`` list for one tracer, ready to serialize."""
    events: List[Dict] = []
    procs = tracer.processes()
    # Metadata first, sorted by track name ("rack" got pid 0; nodes
    # follow in name order because make_* helpers name them node0..N).
    for name in sorted(procs, key=lambda n: (procs[n] != 0, n)):
        pid = procs[name]
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": CONTROL_TID, "args": {"name": "events"}})
        for tid in range(CONTROL_TID + 1, tracer.lane_count(pid) + 1):
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": f"lane-{tid}"}})
    # Spans and instants in one stream, sorted by (ts, record order) so
    # nested X events appear parent-first (Perfetto requires begin-sorted
    # input for correct nesting on a tid).
    timed = []
    for i, (t0, t1, pid, tid, name, cat, trace_id, args) in \
            enumerate(tracer.spans):
        event = {"name": name, "cat": cat, "ph": "X",
                 "ts": t0 * 1e6, "dur": (t1 - t0) * 1e6,
                 "pid": pid, "tid": tid}
        event_args = dict(args) if args else {}
        if trace_id:
            event_args["trace_id"] = trace_id
        if event_args:
            event["args"] = event_args
        # Longer spans first at equal ts, so parents precede children.
        timed.append((t0 * 1e6, -(t1 - t0), i, event))
    for i, (t, pid, tid, name, args) in enumerate(tracer.instants):
        event = {"name": name, "cat": "instant", "ph": "i",
                 "ts": t * 1e6, "s": "t", "pid": pid, "tid": tid}
        if args:
            event["args"] = dict(args)
        timed.append((t * 1e6, 0.0, len(tracer.spans) + i, event))
    timed.sort(key=lambda entry: entry[:3])
    events.extend(entry[3] for entry in timed)
    return events


def to_chrome_trace(tracer: SpanTracer,
                    metadata: Optional[Dict] = None) -> Dict:
    """A complete Perfetto-loadable JSON object."""
    out = {"traceEvents": chrome_trace_events(tracer),
           "displayTimeUnit": "ms"}
    if metadata:
        out["otherData"] = {k: metadata[k] for k in sorted(metadata)}
    return out


def write_chrome_trace(tracer: SpanTracer, path,
                       metadata: Optional[Dict] = None) -> int:
    """Write the trace JSON; returns the number of trace events."""
    payload = to_chrome_trace(tracer, metadata=metadata)
    Path(path).write_text(json.dumps(payload))
    return len(payload["traceEvents"])


# -- phase breakdown ----------------------------------------------------------

#: Phase spans reported in the cold-start decomposition, in lifecycle
#: order (everything else recorded under a trace_id still aggregates,
#: appended in name order after these).
PHASE_ORDER = ("queue", "dispatch", "warm_hit", "acquire", "criu_restore",
               "proc_state_restore", "mmt_attach", "fault_replay", "exec",
               "teardown")


def phase_breakdown(tracer: SpanTracer) -> Dict[str, Dict[str, Dict]]:
    """Per start-kind, per phase: count and mean/max duration (seconds).

    This is the paper-style cold-start decomposition: root spans (cat
    ``"invocation"``) carry the start kind; phase spans sharing the root's
    ``trace_id`` are grouped under it.  Phases whose kind cannot be
    resolved (e.g. an invocation interrupted by a crash before its root
    span was emitted) land under ``"unknown"``.
    """
    kind_by_trace: Dict[int, str] = {}
    for t0, t1, _pid, _tid, _name, cat, trace_id, args in tracer.spans:
        if cat == "invocation" and trace_id:
            kind_by_trace[trace_id] = (args or {}).get("kind", "unknown")
    acc: Dict[str, Dict[str, List[float]]] = {}
    for t0, t1, _pid, _tid, name, cat, trace_id, _args in tracer.spans:
        if cat != "phase" or not trace_id:
            continue
        kind = kind_by_trace.get(trace_id, "unknown")
        acc.setdefault(kind, {}).setdefault(name, []).append(t1 - t0)
    out: Dict[str, Dict[str, Dict]] = {}
    for kind in sorted(acc):
        phases = acc[kind]
        ordered = [p for p in PHASE_ORDER if p in phases]
        ordered += sorted(set(phases) - set(PHASE_ORDER))
        out[kind] = {}
        for phase in ordered:
            durations = phases[phase]
            out[kind][phase] = {
                "count": len(durations),
                "mean_ms": sum(durations) / len(durations) * 1e3,
                "max_ms": max(durations) * 1e3,
            }
    return out


def phase_table(tracer: SpanTracer) -> str:
    """The phase breakdown rendered as an aligned text table."""
    breakdown = phase_breakdown(tracer)
    lines = []
    header = f"{'start kind':<12} {'phase':<20} {'count':>8} " \
             f"{'mean ms':>10} {'max ms':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for kind in sorted(breakdown):
        for phase, row in breakdown[kind].items():
            lines.append(f"{kind:<12} {phase:<20} {row['count']:>8} "
                         f"{row['mean_ms']:>10.3f} {row['max_ms']:>10.3f}")
    return "\n".join(lines)
