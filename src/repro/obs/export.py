"""Exporters: Chrome-trace JSON (Perfetto), phase tables, Prometheus.

Chrome Trace Event Format reference: ``ph:"X"`` complete events carry
``ts``/``dur`` in **microseconds** — here *virtual* microseconds, so a
Perfetto timeline of a run reads directly in simulated time.  ``ph:"M"``
metadata names the process (track) and thread (lane) rows; ``ph:"i"``
instants mark point events (faults, crashes, VM lifecycle).

Every iteration below is over sorted keys (nodes, functions, metric
names): export output is a deterministic function of the recorded data,
never of dict insertion order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.trace import CONTROL_TID, SpanTracer


def chrome_trace_events(tracer: SpanTracer) -> List[Dict]:
    """The ``traceEvents`` list for one tracer, ready to serialize."""
    events: List[Dict] = []
    procs = tracer.processes()
    # Metadata first, sorted by track name ("rack" got pid 0; nodes
    # follow in name order because make_* helpers name them node0..N).
    for name in sorted(procs, key=lambda n: (procs[n] != 0, n)):
        pid = procs[name]
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": CONTROL_TID, "args": {"name": "events"}})
        for tid in range(CONTROL_TID + 1, tracer.lane_count(pid) + 1):
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": f"lane-{tid}"}})
    # Spans and instants in one stream, begin-sorted (Perfetto requires
    # begin-sorted input for correct nesting on a tid); at equal ts,
    # longer spans first so parents precede children, then a pure
    # content key.  The key must depend only on event *content*, never
    # on record order: a parallel run's merged shard traces arrive in
    # shard order, not the serial run's emission order, and byte-equal
    # export of equal multisets is what makes the trace the fourth
    # bit-identical artifact (result, records, registry, trace).
    timed = []
    for t0, t1, pid, tid, name, cat, trace_id, args in tracer.spans:
        event = {"name": name, "cat": cat, "ph": "X",
                 "ts": t0 * 1e6, "dur": (t1 - t0) * 1e6,
                 "pid": pid, "tid": tid}
        event_args = dict(args) if args else {}
        if trace_id:
            event_args["trace_id"] = trace_id
        if event_args:
            event["args"] = event_args
        timed.append((t0 * 1e6, -(t1 - t0), 0, pid, tid, name, trace_id,
                      _canonical_args(args), event))
    for t, pid, tid, name, args in tracer.instants:
        event = {"name": name, "cat": "instant", "ph": "i",
                 "ts": t * 1e6, "s": "t", "pid": pid, "tid": tid}
        if args:
            event["args"] = dict(args)
        timed.append((t * 1e6, 0.0, 1, pid, tid, name, 0,
                      _canonical_args(args), event))
    timed.sort(key=lambda entry: entry[:8])
    events.extend(entry[8] for entry in timed)
    return events


def _canonical_args(args: Optional[Dict]) -> str:
    """A sortable, content-only rendering of an event's args."""
    if not args:
        return ""
    return json.dumps(args, sort_keys=True)


def to_chrome_trace(tracer: SpanTracer,
                    metadata: Optional[Dict] = None) -> Dict:
    """A complete Perfetto-loadable JSON object."""
    out = {"traceEvents": chrome_trace_events(tracer),
           "displayTimeUnit": "ms"}
    if metadata:
        out["otherData"] = {k: metadata[k] for k in sorted(metadata)}
    return out


def write_chrome_trace(tracer: SpanTracer, path,
                       metadata: Optional[Dict] = None) -> int:
    """Write the trace JSON; returns the number of trace events."""
    payload = to_chrome_trace(tracer, metadata=metadata)
    Path(path).write_text(json.dumps(payload))
    return len(payload["traceEvents"])


# -- schema validation ---------------------------------------------------------

#: Minimal JSON-schema for the exported Chrome trace: the envelope, the
#: three event phases we emit, and the per-phase required fields.  CI
#: validates every exported trace against this before uploading it.
CHROME_TRACE_SCHEMA: Dict = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"type": "string", "enum": ["X", "i", "M"]},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "cat": {"type": "string"},
                    "s": {"type": "string", "enum": ["t", "p", "g"]},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

#: Extra per-phase requirements the generic schema cannot express.
_PHASE_REQUIRED = {"X": ("ts", "dur"), "i": ("ts", "s"), "M": ("args",)}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
}


def _validate_node(obj, schema: Dict, path: str, errors: List[str]) -> None:
    """Recursive validator for the JSON-schema subset used above."""
    expected = schema.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](obj):
        errors.append(f"{path}: expected {expected}, "
                      f"got {type(obj).__name__}")
        return
    enum = schema.get("enum")
    if enum is not None and obj not in enum:
        errors.append(f"{path}: {obj!r} not in {enum}")
    minimum = schema.get("minimum")
    if minimum is not None and isinstance(obj, (int, float)) \
            and obj < minimum:
        errors.append(f"{path}: {obj!r} < minimum {minimum}")
    if expected == "object":
        for req in schema.get("required", ()):
            if req not in obj:
                errors.append(f"{path}: missing required key {req!r}")
        props = schema.get("properties", {})
        for key in sorted(props):
            if key in obj:
                _validate_node(obj[key], props[key], f"{path}.{key}",
                               errors)
    elif expected == "array":
        items = schema.get("items")
        if items is not None:
            for i, entry in enumerate(obj):
                _validate_node(entry, items, f"{path}[{i}]", errors)


def validate_chrome_trace(data: Dict) -> List[str]:
    """Validate an exported trace against :data:`CHROME_TRACE_SCHEMA`.

    Returns a list of violations (empty = valid): schema mismatches
    plus the per-phase field requirements (X events need ts/dur, i
    events need ts/s, M events need args).
    """
    errors: List[str] = []
    _validate_node(data, CHROME_TRACE_SCHEMA, "$", errors)
    if not errors:
        for i, event in enumerate(data["traceEvents"]):
            for req in _PHASE_REQUIRED.get(event.get("ph"), ()):
                if req not in event:
                    errors.append(
                        f"$.traceEvents[{i}]: ph={event.get('ph')!r} "
                        f"requires {req!r}")
    return errors


# -- phase breakdown ----------------------------------------------------------

#: Phase spans reported in the cold-start decomposition, in lifecycle
#: order (everything else recorded under a trace_id still aggregates,
#: appended in name order after these).
PHASE_ORDER = ("queue", "dispatch", "warm_hit", "acquire", "criu_restore",
               "proc_state_restore", "mmt_attach", "fault_replay", "exec",
               "teardown")


def phase_breakdown(tracer: SpanTracer) -> Dict[str, Dict[str, Dict]]:
    """Per start-kind, per phase: count and mean/max duration (seconds).

    This is the paper-style cold-start decomposition: root spans (cat
    ``"invocation"``) carry the start kind; phase spans sharing the root's
    ``trace_id`` are grouped under it.  Phases whose kind cannot be
    resolved (e.g. an invocation interrupted by a crash before its root
    span was emitted) land under ``"unknown"``.
    """
    kind_by_trace: Dict[int, str] = {}
    for t0, t1, _pid, _tid, _name, cat, trace_id, args in tracer.spans:
        if cat == "invocation" and trace_id:
            kind_by_trace[trace_id] = (args or {}).get("kind", "unknown")
    acc: Dict[str, Dict[str, List[float]]] = {}
    for t0, t1, _pid, _tid, name, cat, trace_id, _args in tracer.spans:
        if cat != "phase" or not trace_id:
            continue
        kind = kind_by_trace.get(trace_id, "unknown")
        acc.setdefault(kind, {}).setdefault(name, []).append(t1 - t0)
    out: Dict[str, Dict[str, Dict]] = {}
    for kind in sorted(acc):
        phases = acc[kind]
        ordered = [p for p in PHASE_ORDER if p in phases]
        ordered += sorted(set(phases) - set(PHASE_ORDER))
        out[kind] = {}
        for phase in ordered:
            durations = phases[phase]
            out[kind][phase] = {
                "count": len(durations),
                "mean_ms": sum(durations) / len(durations) * 1e3,
                "max_ms": max(durations) * 1e3,
            }
    return out


def phase_table(tracer: SpanTracer) -> str:
    """The phase breakdown rendered as an aligned text table."""
    breakdown = phase_breakdown(tracer)
    lines = []
    header = f"{'start kind':<12} {'phase':<20} {'count':>8} " \
             f"{'mean ms':>10} {'max ms':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for kind in sorted(breakdown):
        for phase, row in breakdown[kind].items():
            lines.append(f"{kind:<12} {phase:<20} {row['count']:>8} "
                         f"{row['mean_ms']:>10.3f} {row['max_ms']:>10.3f}")
    return "\n".join(lines)
