"""Run a scenario under observability and export its artifacts.

Backs ``python -m repro.cli trace <scenario>``: builds the scenario
world, installs an observer at the requested level, runs the workload on
the virtual clock, and exports whatever the level produced — a Chrome
trace (Perfetto-loadable, ``--out``), the metric totals, and the
paper-style per-phase breakdown table.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mem.layout import GB
from repro.obs.export import phase_breakdown, phase_table, write_chrome_trace
from repro.obs.observer import observed

#: Scenarios the trace subcommand can replay.
TRACE_SCENARIOS = ("w1", "w2", "cluster")


def _run_scenario(scenario: str, platform: str, duration: float,
                  seed: int, nodes: int):
    """Build + run one scenario; returns (recorder, label)."""
    from repro.bench.harness import run_platform_workload
    from repro.workloads.synthetic import make_w1_bursty, make_w2_diurnal

    if scenario == "w1":
        workload = make_w1_bursty(seed=seed, duration=duration)
        result = run_platform_workload(platform, workload, seed=seed)
        return result.recorder, f"{platform}/W1"
    if scenario == "w2":
        workload = make_w2_diurnal(seed=seed, duration=duration,
                                   mean_rate=1.6, soft_cap_bytes=5 * GB)
        result = run_platform_workload(platform, workload, seed=seed)
        return result.recorder, f"{platform}/W2"
    if scenario == "cluster":
        from repro.mem.pools import CXLPool
        from repro.serverless.cluster import make_trenv_cluster
        cluster = make_trenv_cluster(nodes, CXLPool(128 * GB), seed=seed)
        workload = make_w2_diurnal(seed=seed, duration=duration,
                                   mean_rate=1.6)
        result = cluster.run_workload(workload)
        return result.recorder, f"t-cxl-rack{nodes}/W2"
    raise ValueError(
        f"unknown trace scenario {scenario!r}; known: {TRACE_SCENARIOS}")


def run_traced_scenario(scenario: str, level: str = "spans",
                        out: Optional[str] = "trace.json",
                        platform: str = "t-cxl", duration: float = 60.0,
                        seed: int = 1, nodes: int = 3) -> Dict:
    """Run ``scenario`` observed at ``level``; returns a JSON-safe report.

    ``level="off"`` runs the scenario unobserved (useful as a timing
    reference); no artifacts are produced then.
    """
    with observed(level) as obs:
        recorder, label = _run_scenario(scenario, platform, duration,
                                        seed, nodes)
    report: Dict = {
        "scenario": scenario,
        "label": label,
        "obs_level": level,
        "duration_s": duration,
        "seed": seed,
        "invocations": recorder.count(),
        "start_kinds": recorder.start_kind_counts(),
    }
    if obs is None:
        return report
    report["metrics_totals"] = obs.registry.totals()
    if obs.tracer is not None:
        report["n_spans"] = obs.tracer.n_spans
        report["n_instants"] = obs.tracer.n_instants
        report["phase_breakdown"] = phase_breakdown(obs.tracer)
        report["phase_table"] = phase_table(obs.tracer)
        if out:
            n_events = write_chrome_trace(
                obs.tracer, out,
                metadata={"scenario": scenario, "label": label,
                          "seed": seed, "duration_s": duration})
            report["trace_path"] = str(out)
            report["trace_events"] = n_events
    return report
