"""Run a scenario under observability and export its artifacts.

Backs ``python -m repro.cli trace <scenario>``: builds the scenario
world, installs an observer at the requested level, runs the workload on
the virtual clock, and exports whatever the level produced — a Chrome
trace (Perfetto-loadable, ``--out``), the metric totals, and the
paper-style per-phase breakdown table.

The ``cluster`` scenario goes through the sharded runner
(:func:`repro.serverless.parallel.run_cluster_parallel`), so ``--jobs``
splits the rack across worker processes and the exported trace is
**byte-identical** for every worker count: shard span traces merge back
to serial-equivalent form (:mod:`repro.obs.merge`), and the report's
``parallel.span_merge`` field says how the trace was obtained
("serial", "merged", or an explicit fallback reason).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mem.layout import GB
from repro.obs.export import phase_breakdown, phase_table, write_chrome_trace
from repro.obs.observer import observed

#: Scenarios the trace subcommand can replay.
TRACE_SCENARIOS = ("w1", "w2", "cluster")


def _run_single(scenario: str, platform: str, duration: float, seed: int):
    """Build + run one single-node scenario; returns (recorder, label)."""
    from repro.bench.harness import run_platform_workload
    from repro.workloads.synthetic import make_w1_bursty, make_w2_diurnal

    if scenario == "w1":
        workload = make_w1_bursty(seed=seed, duration=duration)
        result = run_platform_workload(platform, workload, seed=seed)
        return result.recorder, f"{platform}/W1"
    workload = make_w2_diurnal(seed=seed, duration=duration,
                               mean_rate=1.6, soft_cap_bytes=5 * GB)
    result = run_platform_workload(platform, workload, seed=seed)
    return result.recorder, f"{platform}/W2"


def _finish_report(report: Dict, registry, tracer, out, scenario: str,
                   label: str, seed: int, duration: float) -> Dict:
    if registry is not None:
        report["metrics_totals"] = registry.totals()
    if tracer is not None:
        report["n_spans"] = tracer.n_spans
        report["n_instants"] = tracer.n_instants
        report["n_links"] = tracer.n_links
        report["phase_breakdown"] = phase_breakdown(tracer)
        report["phase_table"] = phase_table(tracer)
        if out:
            # Metadata must be jobs-independent: the byte-identity
            # contract covers the whole exported file.
            n_events = write_chrome_trace(
                tracer, out,
                metadata={"scenario": scenario, "label": label,
                          "seed": seed, "duration_s": duration})
            report["trace_path"] = str(out)
            report["trace_events"] = n_events
    return report


def run_traced_scenario(scenario: str, level: str = "spans",
                        out: Optional[str] = "trace.json",
                        platform: str = "t-cxl", duration: float = 60.0,
                        seed: int = 1, nodes: int = 3,
                        jobs: int = 1) -> Dict:
    """Run ``scenario`` observed at ``level``; returns a JSON-safe report.

    ``level="off"`` runs the scenario unobserved (useful as a timing
    reference); no artifacts are produced then.  ``jobs`` applies to
    the cluster scenario only (worker processes for the sharded
    runner); single-node scenarios ignore it.
    """
    if scenario == "cluster":
        return _run_traced_cluster(level, out, duration, seed, nodes, jobs)
    if scenario not in TRACE_SCENARIOS:
        raise ValueError(
            f"unknown trace scenario {scenario!r}; known: {TRACE_SCENARIOS}")
    with observed(level) as obs:
        recorder, label = _run_single(scenario, platform, duration, seed)
    report: Dict = {
        "scenario": scenario,
        "label": label,
        "obs_level": level,
        "duration_s": duration,
        "seed": seed,
        "invocations": recorder.count(),
        "start_kinds": recorder.start_kind_counts(),
    }
    if obs is None:
        return report
    return _finish_report(report, obs.registry, obs.tracer, out,
                          scenario, label, seed, duration)


def _run_traced_cluster(level: str, out, duration: float, seed: int,
                        nodes: int, jobs: int) -> Dict:
    from repro.obs.registry import MetricsRegistry
    from repro.serverless.parallel import run_cluster_parallel
    from repro.serverless.partition import ClusterSpec
    from repro.workloads.synthetic import make_w2_diurnal

    workload = make_w2_diurnal(seed=seed, duration=duration, mean_rate=1.6)
    spec = ClusterSpec(n_nodes=nodes, seed=seed)
    outcome = run_cluster_parallel(spec, workload, jobs=jobs,
                                   obs_level=level)
    label = f"t-cxl-rack{nodes}/W2"
    recorder = outcome.result.recorder
    report: Dict = {
        "scenario": "cluster",
        "label": label,
        "obs_level": level,
        "duration_s": duration,
        "seed": seed,
        "invocations": recorder.count(),
        "start_kinds": recorder.start_kind_counts(),
        "parallel": dict(outcome.report.to_dict(),
                         span_merge=outcome.span_merge),
    }
    if level == "off":
        return report
    registry = (MetricsRegistry.from_dict(outcome.registry)
                if outcome.registry is not None else None)
    return _finish_report(report, registry, outcome.tracer, out,
                          "cluster", label, seed, duration)
