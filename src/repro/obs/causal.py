"""Causal span graph and per-invocation critical-path extraction.

Builds on the raw :class:`~repro.obs.trace.SpanTracer` record streams:

* **roots** — one ``cat="invocation"`` span per completed invocation,
  carrying its start kind; its interval is exactly the recorder's e2e
  (same ``t1 - t0`` subtraction, same floats);
* **phases** — ``cat="phase"`` spans sharing the root's trace id
  (queue, acquire, the restore sub-phases, fault_replay, exec, ...),
  possibly nested (restore phases sit inside ``acquire``);
* **links** — causal edges ``(t0, t1, kind, src, dst)``: who/what a
  trace id spent an interval waiting on (admission queues, slot
  hand-offs, dispatch backoff, crash re-dispatch, pool fetches).

The critical path of an invocation tiles its root interval into
segments, each blamed on the **deepest** phase span covering it (the
innermost nested phase), on a covering causal link (``wait:<kind>``)
where no phase reaches, or on ``"unattributed"`` as the final
fallback.  Durations are exact: every boundary is one of the run's
own float timestamps, each segment length is the exact rational
``Fraction(b) - Fraction(a)``, and the segment sum telescopes to
``Fraction(t1) - Fraction(t0)`` — whose ``float()`` is bit-equal to
the recorded e2e because IEEE subtraction is correctly rounded.
Blame per label is summed as Fractions first and floated only at the
edge, so the per-phase blame of any invocation sums *bit-exactly* to
its measured latency (``tests/property/test_prop_critical_path.py``).

Work that happens before the root span opens (admission queueing,
breaker backoff, crash re-dispatch — all recorded as links on the
unbound context) is accounted separately as ``pre_waits``: it is real
wall time for the client but is not part of the platform-recorded
e2e, and conflating the two would break the bit-exact sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import SpanTracer

#: Blame label for time inside the root no phase or link explains.
UNATTRIBUTED = "unattributed"


@dataclass(frozen=True)
class Segment:
    """One tile of an invocation's critical path."""

    t0: float
    t1: float
    label: str
    #: "span" (a phase covered it), "link" (a causal wait covered it),
    #: or "gap" (unattributed).
    source: str

    @property
    def exact(self) -> Fraction:
        return Fraction(self.t1) - Fraction(self.t0)


@dataclass
class CriticalPath:
    """The fully-attributed latency of one completed invocation."""

    trace_id: int
    function: str
    kind: str
    node: str
    t0: float
    t1: float
    e2e: float
    segments: List[Segment]
    #: label -> exact blame; sums to Fraction(t1) - Fraction(t0).
    blame: Dict[str, Fraction]
    #: pool tier -> CPU-seconds charged to it (from fault_replay /
    #: mmt_attach annotations; a derived reading, not part of the sum).
    pools: Dict[str, Fraction]
    #: link kind -> exact wait before the root opened (admission,
    #: backoff, crash re-dispatch) — client-visible, outside the e2e.
    pre_waits: Dict[str, Fraction]

    @property
    def total(self) -> Fraction:
        return sum(self.blame.values(), Fraction(0))

    def blame_s(self) -> Dict[str, float]:
        return {label: float(self.blame[label])
                for label in sorted(self.blame)}

    def total_s(self) -> float:
        """Bit-equal to :attr:`e2e` — the acceptance invariant."""
        return float(self.total)


def _clip(t0: float, t1: float, lo: float, hi: float
          ) -> Optional[Tuple[float, float]]:
    a, b = max(t0, lo), min(t1, hi)
    return (a, b) if a < b else None


class CausalGraph:
    """Index of one tracer's roots, phases and causal links."""

    def __init__(self, tracer: SpanTracer):
        self.tracer = tracer
        self._node_of_pid = {pid: name
                             for name, pid in tracer.processes().items()}
        self.roots: Dict[int, Tuple] = {}
        self.phases: Dict[int, List[Tuple]] = {}
        for span in tracer.spans:
            t0, t1, pid, tid, name, cat, trace_id, args = span
            if not trace_id:
                continue
            if cat == "invocation":
                self.roots[trace_id] = span
            elif cat == "phase":
                self.phases.setdefault(trace_id, []).append(span)
        self.links_by_dst: Dict[int, List[Tuple]] = {}
        for link in tracer.links:
            self.links_by_dst.setdefault(link[4], []).append(link)
        # Canonical order everywhere: record order is shard-merge
        # dependent, content order is not.
        for spans in self.phases.values():
            spans.sort(key=lambda s: (s[0], s[1], s[4]))
        for links in self.links_by_dst.values():
            links.sort(key=lambda e: (e[0], e[1], e[2], e[3]))

    def trace_ids(self) -> List[int]:
        """Completed invocations, in serial begin order."""
        return sorted(self.roots)

    def waiters_on(self, trace_id: int) -> List[Tuple]:
        """Links whose *source* is this invocation (whom it delayed)."""
        return sorted((link for link in self.tracer.links
                       if link[3] == trace_id),
                      key=lambda e: (e[0], e[1], e[2], e[4]))

    # -- the critical path ---------------------------------------------------

    def critical_path(self, trace_id: int) -> Optional[CriticalPath]:
        """Attribute every instant of one invocation's e2e (or None
        when the invocation never completed — no root span exists)."""
        root = self.roots.get(trace_id)
        if root is None:
            return None
        r0, r1, pid, _tid, function, _cat, _tid2, root_args = root
        kind = (root_args or {}).get("kind", "unknown")
        node = self._node_of_pid.get(pid, f"pid{pid}")

        # Phase spans clipped to the root: spans from crashed earlier
        # attempts lie entirely before r0 and vanish here.
        clipped: List[Tuple[float, float, str]] = []
        for t0, t1, _p, _t, name, _c, _id, _a in \
                self.phases.get(trace_id, ()):
            cut = _clip(t0, t1, r0, r1)
            if cut is not None:
                clipped.append((cut[0], cut[1], name))
        links: List[Tuple[float, float, str]] = []
        for t0, t1, lkind, _src, _dst, _a in \
                self.links_by_dst.get(trace_id, ()):
            cut = _clip(t0, t1, r0, r1)
            if cut is not None:
                links.append((cut[0], cut[1], f"wait:{lkind}"))

        bounds = sorted({r0, r1}
                        | {t for a, b, _ in clipped for t in (a, b)}
                        | {t for a, b, _ in links for t in (a, b)})
        segments: List[Segment] = []
        for a, b in zip(bounds, bounds[1:]):
            covering = [(t0, t1, name) for t0, t1, name in clipped
                        if t0 <= a and t1 >= b]
            if covering:
                # Deepest = latest start, then earliest end (innermost
                # of the nest); name breaks exact-interval ties.
                t0, t1, name = max(covering,
                                   key=lambda s: (s[0], -s[1], s[2]))
                source = "span"
            else:
                waiting = [(t0, t1, name) for t0, t1, name in links
                           if t0 <= a and t1 >= b]
                if waiting:
                    t0, t1, name = max(waiting,
                                       key=lambda s: (s[0], -s[1], s[2]))
                    source = "link"
                else:
                    name, source = UNATTRIBUTED, "gap"
            if segments and segments[-1].label == name \
                    and segments[-1].source == source \
                    and segments[-1].t1 == a:
                segments[-1] = Segment(segments[-1].t0, b, name, source)
            else:
                segments.append(Segment(a, b, name, source))

        blame: Dict[str, Fraction] = {}
        for seg in segments:
            blame[seg.label] = blame.get(seg.label, Fraction(0)) \
                + seg.exact

        pools: Dict[str, Fraction] = {}
        for t0, t1, _p, _t, name, _c, _id, args in \
                self.phases.get(trace_id, ()):
            if not args or _clip(t0, t1, r0, r1) is None:
                continue
            if name == "fault_replay":
                for pool, cpu_s in (args.get("pools") or {}).items():
                    pools[pool] = pools.get(pool, Fraction(0)) \
                        + Fraction(cpu_s)
            elif name == "mmt_attach":
                pool = args.get("pool")
                if pool:
                    pools[pool] = pools.get(pool, Fraction(0)) \
                        + (Fraction(t1) - Fraction(t0))

        pre_waits: Dict[str, Fraction] = {}
        for t0, t1, lkind, _src, _dst, _a in \
                self.links_by_dst.get(trace_id, ()):
            before = min(t1, r0)
            if before > t0:
                pre_waits[lkind] = pre_waits.get(lkind, Fraction(0)) \
                    + (Fraction(before) - Fraction(t0))

        return CriticalPath(
            trace_id=trace_id, function=function, kind=kind, node=node,
            t0=r0, t1=r1, e2e=r1 - r0, segments=segments, blame=blame,
            pools=pools, pre_waits=pre_waits)

    def all_paths(self) -> List[CriticalPath]:
        paths = []
        for trace_id in self.trace_ids():
            path = self.critical_path(trace_id)
            assert path is not None
            paths.append(path)
        return paths


# -- aggregation ---------------------------------------------------------------


def _merge_into(acc: Dict[str, Fraction],
                add: Dict[str, Fraction]) -> None:
    for key, value in add.items():
        acc[key] = acc.get(key, Fraction(0)) + value


class BlameProfile:
    """Exact blame totals over a set of invocations, mergeable.

    All accumulators are ``Fraction`` sums keyed by strings, so merging
    profiles is associative and order-invariant (exact rational
    addition) — the property the parallel sweep and the hypothesis
    tests rely on.
    """

    def __init__(self):
        self.n = 0
        self.total = Fraction(0)
        self.by_phase: Dict[str, Fraction] = {}
        self.by_node: Dict[str, Fraction] = {}
        self.by_kind: Dict[str, Fraction] = {}
        self.by_pool: Dict[str, Fraction] = {}
        self.pre_waits: Dict[str, Fraction] = {}

    def add_path(self, path: CriticalPath) -> None:
        self.n += 1
        total = path.total
        self.total += total
        _merge_into(self.by_phase, path.blame)
        self.by_node[path.node] = self.by_node.get(path.node,
                                                   Fraction(0)) + total
        self.by_kind[path.kind] = self.by_kind.get(path.kind,
                                                   Fraction(0)) + total
        _merge_into(self.by_pool, path.pools)
        _merge_into(self.pre_waits, path.pre_waits)

    def merge_from(self, other: "BlameProfile") -> None:
        self.n += other.n
        self.total += other.total
        _merge_into(self.by_phase, other.by_phase)
        _merge_into(self.by_node, other.by_node)
        _merge_into(self.by_kind, other.by_kind)
        _merge_into(self.by_pool, other.by_pool)
        _merge_into(self.pre_waits, other.pre_waits)

    def to_dict(self) -> Dict:
        def flat(acc: Dict[str, Fraction]) -> Dict[str, float]:
            return {key: float(acc[key]) for key in sorted(acc)}
        return {
            "n": self.n,
            "total_s": float(self.total),
            "by_phase_s": flat(self.by_phase),
            "by_node_s": flat(self.by_node),
            "by_kind_s": flat(self.by_kind),
            "by_pool_s": flat(self.by_pool),
            "pre_wait_s": flat(self.pre_waits),
        }


def folded_stacks(paths: List[CriticalPath]) -> str:
    """Flame-graph folded-stack lines: ``kind;node;phase <microsec>``.

    Weights are the exact per-(kind, node, phase) blame rounded to
    integer virtual microseconds; lines are sorted, so the output is a
    pure function of the path set.
    """
    acc: Dict[Tuple[str, str, str], Fraction] = {}
    for path in paths:
        for label, exact in path.blame.items():
            key = (path.kind, path.node, label)
            acc[key] = acc.get(key, Fraction(0)) + exact
    lines = []
    for kind, node, label in sorted(acc):
        micros = int(round(float(acc[(kind, node, label)] * 1_000_000)))
        if micros > 0:
            lines.append(f"{kind};{node};{label} {micros}")
    return "\n".join(lines) + ("\n" if lines else "")
