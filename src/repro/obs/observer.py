"""The active observability object: metrics registry + optional tracer.

Two levels:

* ``"metrics"`` — counters/gauges/histograms only (cheap; per-event cost
  is a dict update);
* ``"spans"`` — metrics plus the virtual-time span tracer.

Installation mirrors :mod:`repro.analysis.sanitizer`: a module-level
``hooks.active`` slot, ``observed(...)`` as the context manager, and
``maybe_observed()`` gated on the ``REPRO_OBS`` environment variable so
the whole test suite (or any run) can be wrapped without code changes.

The contract shared with the sanitizer and the optflags work: observers
read simulated state, they never add Delays, RNG draws or any other
simulated effect — results with observability on are bit-identical to
results with it off (``tests/integration/test_golden_determinism.py``).
"""

from __future__ import annotations

import contextlib
import os
from typing import Optional

from repro.obs import hooks
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import SpanTracer, TraceContext

#: Valid --obs-level / REPRO_OBS values ("off" means: don't install).
LEVELS = ("off", "metrics", "spans")


class Observability:
    """Holds the registry (+ tracer) and receives every hook call.

    Instrumented modules call the ``on_*`` methods below through
    ``hooks.active``; platform code with richer context (the invocation
    lifecycle) uses :attr:`tracer` and :attr:`registry` directly.
    """

    def __init__(self, level: str = "spans",
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[SpanTracer] = None):
        if level not in LEVELS or level == "off":
            raise ValueError(
                f"observability level must be one of {LEVELS[1:]}, "
                f"got {level!r}")
        self.level = level
        self.registry = registry if registry is not None else \
            MetricsRegistry()
        self.tracer = tracer if tracer is not None else (
            SpanTracer() if level == "spans" else None)

    # -- memory subsystem hooks ----------------------------------------------

    def on_pool_alloc(self, pool, npages: int) -> None:
        self.registry.inc("pool_alloc_pages_total", npages, pool=pool.name)

    def on_pool_fetch(self, pool, npages: int, seconds: float) -> None:
        self.registry.inc("pool_fetches_total", pool=pool.name)
        self.registry.inc("pool_fetch_pages_total", npages, pool=pool.name)
        self.registry.observe("pool_fetch_seconds", seconds, pool=pool.name)

    def on_pool_read(self, pool, nloads: int) -> None:
        self.registry.inc("pool_read_loads_total", nloads, pool=pool.name)

    def on_page_cache_delta(self, cache, delta: int) -> None:
        if delta > 0:
            self.registry.inc("page_cache_inserted_pages_total", delta,
                              cache=cache.name)
        else:
            self.registry.inc("page_cache_evicted_pages_total", -delta,
                              cache=cache.name)

    def on_mem_charge(self, category: str, delta_bytes: int) -> None:
        self.registry.inc("mem_charge_events_total", category=category)
        self.registry.add_gauge("mem_category_bytes", delta_bytes,
                                category=category)

    # -- VM hooks -------------------------------------------------------------

    def on_vm_event(self, event: str, vm_name: str, t: float) -> None:
        self.registry.inc("vm_events_total", event=event)
        if self.tracer is not None:
            self.tracer.instant(f"vm_{event}", t,
                                args={"vm": vm_name})

    def on_vm_io(self, mode: str, nbytes: int, seconds: float,
                 ctx: Optional[TraceContext] = None) -> None:
        self.registry.inc("vm_io_bytes_total", nbytes, mode=mode)
        self.registry.inc("vm_io_seconds_total", seconds, mode=mode)

    # -- restore-path hooks ---------------------------------------------------

    def on_criu_restore(self, image, t0: float, t1: float,
                        ctx: Optional[TraceContext]) -> None:
        self.registry.inc("criu_restores_total")
        self.registry.inc("criu_restore_bytes_total", image.nbytes)
        self.registry.observe("criu_restore_seconds", t1 - t0)
        if self.tracer is not None:
            self.tracer.span(ctx, "criu_restore", t0, t1,
                             args={"bytes": image.nbytes,
                                   "n_vmas": len(image.vmas)})

    def on_proc_state_restore(self, image, t0: float, t1: float,
                              ctx: Optional[TraceContext]) -> None:
        self.registry.inc("proc_state_restores_total")
        if self.tracer is not None:
            self.tracer.span(ctx, "proc_state_restore", t0, t1,
                             args={"n_threads": image.n_threads,
                                   "n_fds": image.n_fds})

    def on_mmt_attach(self, template, t0: float, t1: float,
                      ctx: Optional[TraceContext]) -> None:
        self.registry.inc("mmt_attaches_total")
        self.registry.inc("mmt_attach_pages_total", template.total_pages)
        self.registry.observe("mmt_attach_seconds", t1 - t0)
        if self.tracer is not None:
            pools = sorted({vma.pool.name for vma in template.vmas
                            if vma.pool is not None})
            self.tracer.span(ctx, "mmt_attach", t0, t1,
                             args={"template": template.key,
                                   "pages": template.total_pages,
                                   "pool": ",".join(pools) or "local"})

    # -- fault-domain hooks ---------------------------------------------------

    def on_fault_event(self, kind: str, target: str, t: float) -> None:
        self.registry.inc("faults_injected_total", kind=kind)
        if self.tracer is not None:
            self.tracer.instant(f"fault:{kind}", t,
                                args={"target": target})

    def on_fault_revert(self, kind: str, target: str, t: float) -> None:
        self.registry.inc("faults_reverted_total", kind=kind)
        if self.tracer is not None:
            self.tracer.instant(f"fault:{kind}", t,
                                args={"target": target})

    # -- invocation lifecycle (called from serverless/base.py) -----------------

    def on_invocation(self, platform_name: str, result) -> None:
        reg = self.registry
        reg.inc("invocations_total", platform=platform_name,
                function=result.function, kind=result.start_kind)
        if result.start_kind == "warm":
            reg.inc("warm_hits_total", platform=platform_name)
        else:
            reg.inc("warm_misses_total", platform=platform_name)
        if result.retries:
            reg.inc("invocation_retries_total", result.retries,
                    platform=platform_name)
        if result.degraded:
            reg.inc("degraded_invocations_total", platform=platform_name)
        reg.observe("invocation_seconds", result.e2e,
                    platform=platform_name, phase="e2e")
        reg.observe("invocation_seconds", result.startup,
                    platform=platform_name, phase="startup")
        reg.observe("invocation_seconds", result.exec,
                    platform=platform_name, phase="exec")

    def on_retire(self, platform_name: str, function: str,
                  reason: str) -> None:
        self.registry.inc("retires_total", platform=platform_name,
                          reason=reason)


# -- installation -------------------------------------------------------------

def install(level: str = "spans",
            registry: Optional[MetricsRegistry] = None) -> Observability:
    """Install a fresh observer; returns it.  Pair with uninstall()."""
    obs = Observability(level, registry=registry)
    hooks.install(obs)
    return obs


def uninstall(previous: Optional[Observability] = None) -> None:
    hooks.uninstall(previous)


@contextlib.contextmanager
def observed(level: str = "spans",
             registry: Optional[MetricsRegistry] = None):
    """Context manager: observe everything inside the block.

    Yields the :class:`Observability`; the previous observer (usually
    None) is restored on exit.
    """
    if level == "off":
        yield None
        return
    obs = Observability(level, registry=registry)
    previous = hooks.install(obs)
    try:
        yield obs
    finally:
        hooks.uninstall(previous)


def level_from_env() -> str:
    """The level requested by ``REPRO_OBS`` (off unless set).

    ``REPRO_OBS=1`` means full spans (the strictest setting, what the
    golden-determinism CI slice exercises); ``metrics``/``spans`` select
    a level explicitly; empty/``0``/``off`` disable.
    """
    raw = os.environ.get("REPRO_OBS", "").strip().lower()
    if raw in ("", "0", "off", "false"):
        return "off"
    if raw in ("1", "true", "spans"):
        return "spans"
    if raw == "metrics":
        return "metrics"
    raise ValueError(
        f"REPRO_OBS={raw!r}: expected 0/1/off/metrics/spans")


@contextlib.contextmanager
def maybe_observed():
    """Install an observer iff ``REPRO_OBS`` requests one (conftest)."""
    level = level_from_env()
    if level == "off":
        yield None
        return
    with observed(level) as obs:
        yield obs
