"""repro.obs: virtual-time tracing, metrics and Perfetto export.

Deliberately import-light: instrumented hot paths import only
:mod:`repro.obs.hooks` (dependency-free), and this package root defers
everything else so ``import repro.obs`` can never create a cycle with
the modules it observes.  Entry points:

* :func:`repro.obs.observer.observed` — context manager installing an
  observer at level ``"metrics"`` or ``"spans"``;
* :func:`repro.obs.capture.run_traced_scenario` — the CLI ``trace``
  subcommand's engine;
* :mod:`repro.obs.export` — Chrome-trace JSON / Prometheus text / phase
  breakdown exporters;
* :mod:`repro.obs.causal` / :mod:`repro.obs.why` — causal span graph,
  bit-exact critical-path blame, and the tail-cohort "why" engine
  behind the CLI ``why`` subcommand;
* :mod:`repro.obs.merge` — folds per-shard span traces from a parallel
  cluster run into one serial-identical tracer.
"""

from __future__ import annotations

__all__ = ["observed", "maybe_observed", "install", "uninstall",
           "level_from_env"]


def __getattr__(name: str):
    if name in __all__:
        from repro.obs import observer
        return getattr(observer, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
