"""Observability hook registry — deliberately dependency-free.

Instrumented modules (pools, page caches, accounting, the serverless
platforms, the fault injector) import this module and guard every hook
call with::

    if hooks.active is not None:
        hooks.active.on_something(...)

``active`` is ``None`` unless an :class:`repro.obs.observer.Observability`
is installed, so the disabled path costs one global load and an ``is``
check — host-side only, never simulated time.  This mirrors
:mod:`repro.analysis.hooks` exactly (and for the same reason): keeping
this module free of imports avoids cycles, because ``repro.mem`` and
``repro.serverless`` may import it without pulling in the observer
(which itself imports them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observability

#: The currently installed observer, or None (the common case).
active: Optional["Observability"] = None


def install(observer: "Observability") -> Optional["Observability"]:
    """Install ``observer`` as the active one; returns the previous."""
    global active
    previous = active
    active = observer
    return previous


def uninstall(previous: Optional["Observability"] = None) -> None:
    """Remove the active observer, restoring ``previous`` (if any)."""
    global active
    active = previous
