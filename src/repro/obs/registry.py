"""Metrics registry: counters, gauges and log-histograms with labels.

Reuses :class:`repro.serverless.metrics.LogHistogram` for distributions,
so histogram memory is O(occupied bins) and merging is the associative
bin-count addition the sweep runner needs: shard registries serialized
with :meth:`MetricsRegistry.to_dict` in worker processes merge into one
registry whose totals equal a serial run's exactly.

Keys are ``(name, sorted label pairs)`` — label order never matters, and
every exporter iterates keys in sorted order (the SIM003 discipline:
nothing downstream may depend on insertion order).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.serverless.metrics import (BINS_PER_DECADE, _LO_EXP,
                                      LogHistogram)

#: A fully-resolved metric key: (name, ((label, value), ...)) sorted.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def render_key(key: MetricKey) -> str:
    """Prometheus-style rendering: ``name{a="x",b="y"}``.

    This is the *internal* canonical form (``totals()``, merge-equality
    checks); :meth:`MetricsRegistry.prometheus_text` uses the escaped
    variant below so exposition output follows the text-format grammar
    without perturbing keys recorded in existing reports.
    """
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def _escape_label_value(value: str) -> str:
    """Text-exposition escaping for a label value: ``\\``, ``"``, LF."""
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _escape_help(text: str) -> str:
    """HELP-line escaping: only backslash and line feed are special."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _prom_key(key: MetricKey) -> str:
    """Exposition-format rendering with escaped label values."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def metric_help(name: str) -> str:
    """The HELP text for a metric family (generic but grammar-valid)."""
    base = name
    for suffix in ("_total", "_seconds", "_bytes", "_pages", "_mb"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
            break
    return f"{base.replace('_', ' ')} (repro.obs)"


def _bin_upper_edge(idx: int) -> float:
    return 10.0 ** (_LO_EXP + (idx + 1) / BINS_PER_DECADE)


def _hist_to_dict(hist: LogHistogram) -> Dict:
    hist._flush()
    return {
        "count": hist._count,
        "total": hist.total,
        # Exact-sum partials in canonical form: a pure function of the
        # exact sum, so A+B and B+A serialize identically, and JSON
        # round-trips Python floats exactly (shortest-repr) — a
        # deserialized histogram merges to bit-identical totals
        # regardless of how samples were sharded across workers.
        "partials": hist.canonical_partials(),
        "min": hist.vmin if hist._count else None,
        "max": hist.vmax if hist._count else None,
        "bins": [[idx, hist.counts[idx]] for idx in sorted(hist.counts)],
        # Sorted: quantiles over the exact buffer are order-free, and a
        # canonical serialization keeps merge associativity observable
        # (A+B and B+A serialize identically).
        "exact": (sorted(hist._exact) if hist._exact is not None else None),
    }


def _hist_from_dict(data: Dict) -> LogHistogram:
    hist = LogHistogram()
    hist._count = int(data["count"])
    partials = data.get("partials")
    hist._partials = ([float(p) for p in partials]
                      if partials is not None else [float(data["total"])])
    if data["min"] is not None:
        hist.vmin = float(data["min"])
        hist.vmax = float(data["max"])
    hist.counts = {int(idx): int(c) for idx, c in data["bins"]}
    exact = data.get("exact")
    hist._exact = list(exact) if exact is not None else None
    return hist


class MetricsRegistry:
    """Counters / gauges / histograms, mergeable across sweep shards.

    Merge semantics: counters and histograms **add** (associative and
    commutative); gauges depend on what the shards *are*.  Sweep shards
    are independent worlds, so a shard gauge is a level observed within
    that shard and the only cross-shard reading that stays meaningful
    without a shared clock is the peak (``gauges="max"``, the default).
    Node-group shards of one parallel cluster run partition a single
    rack, so their levels are disjoint contributions that **add** back
    to the serial level (``gauges="sum"``).
    """

    def __init__(self):
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._hists: Dict[MetricKey, LogHistogram] = {}

    # -- recording -------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._gauges[_key(name, labels)] = value

    def add_gauge(self, name: str, delta: float, **labels) -> None:
        """Accumulate a level gauge (e.g. current bytes per category)."""
        key = _key(name, labels)
        self._gauges[key] = self._gauges.get(key, 0.0) + delta

    def observe(self, name: str, value: float, **labels) -> None:
        key = _key(name, labels)
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = LogHistogram()
        hist.add(value)

    # -- reading ---------------------------------------------------------------

    def counter(self, name: str, **labels) -> float:
        return self._counters.get(_key(name, labels), 0.0)

    def gauge(self, name: str, **labels) -> float:
        return self._gauges.get(_key(name, labels), 0.0)

    def histogram(self, name: str, **labels) -> Optional[LogHistogram]:
        return self._hists.get(_key(name, labels))

    def totals(self) -> Dict[str, float]:
        """Every counter, rendered and sorted — the merge-equality view."""
        return {render_key(k): self._counters[k]
                for k in sorted(self._counters)}

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._hists)

    # -- merging ---------------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry",
                   gauges: str = "max") -> None:
        if gauges not in ("max", "sum"):
            raise ValueError(f"gauges must be 'max' or 'sum', "
                             f"got {gauges!r}")
        for key in sorted(other._counters):
            self._counters[key] = (self._counters.get(key, 0.0)
                                   + other._counters[key])
        for key in sorted(other._gauges):
            theirs = other._gauges[key]
            if gauges == "sum":
                self._gauges[key] = self._gauges.get(key, 0.0) + theirs
            else:
                self._gauges[key] = max(self._gauges.get(key, -math.inf),
                                        theirs)
        for key in sorted(other._hists):
            mine_h = self._hists.get(key)
            if mine_h is None:
                mine_h = self._hists[key] = LogHistogram()
            mine_h.merge(other._hists[key])

    # -- (de)serialization — the sweep's process boundary ----------------------

    def to_dict(self) -> Dict:
        return {
            "counters": [[name, list(labels), self._counters[(name, labels)]]
                         for name, labels in sorted(self._counters)],
            "gauges": [[name, list(labels), self._gauges[(name, labels)]]
                       for name, labels in sorted(self._gauges)],
            "histograms": [[name, list(labels),
                            _hist_to_dict(self._hists[(name, labels)])]
                           for name, labels in sorted(self._hists)],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MetricsRegistry":
        reg = cls()
        for name, labels, value in data["counters"]:
            key = (name, tuple((k, v) for k, v in labels))
            reg._counters[key] = float(value)
        for name, labels, value in data["gauges"]:
            key = (name, tuple((k, v) for k, v in labels))
            reg._gauges[key] = float(value)
        for name, labels, hist in data["histograms"]:
            key = (name, tuple((k, v) for k, v in labels))
            reg._hists[key] = _hist_from_dict(hist)
        return reg

    # -- exposition ------------------------------------------------------------

    def prometheus_text(self) -> str:
        """Prometheus text exposition, fully sorted and format-conformant.

        Each metric family gets ``# HELP`` and ``# TYPE`` lines (exactly
        once, HELP first, per the exposition-format grammar) and label
        values are escaped (backslash, double-quote, newline — the three
        characters the grammar requires escaping inside label values).
        Histograms render cumulative ``_bucket{le=...}`` series over the
        occupied log-scale bins plus ``+Inf``, ``_sum`` and ``_count``.
        """
        lines: List[str] = []
        seen_types: set = set()

        def header(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# HELP {name} "
                             f"{_escape_help(metric_help(name))}")
                lines.append(f"# TYPE {name} {kind}")

        for key in sorted(self._counters):
            header(key[0], "counter")
            lines.append(f"{_prom_key(key)} {self._counters[key]:g}")
        for key in sorted(self._gauges):
            header(key[0], "gauge")
            lines.append(f"{_prom_key(key)} {self._gauges[key]:g}")
        for key in sorted(self._hists):
            name, labels = key
            header(name, "histogram")
            hist = self._hists[key]
            hist._flush()
            cum = 0
            for idx in sorted(hist.counts):
                cum += hist.counts[idx]
                le = (("le", f"{_bin_upper_edge(idx):.9g}"),)
                lines.append(
                    f"{_prom_key((name + '_bucket', labels + le))} {cum}")
            inf = (("le", "+Inf"),)
            lines.append(
                f"{_prom_key((name + '_bucket', labels + inf))} "
                f"{hist._count}")
            lines.append(f"{_prom_key((name + '_sum', labels))} "
                         f"{hist.total:g}")
            lines.append(f"{_prom_key((name + '_count', labels))} "
                         f"{hist._count}")
        return "\n".join(lines) + ("\n" if lines else "")
