"""Virtual-clock span tracer: the invocation lifecycle as trace events.

Spans record *simulated* timestamps (``sim.now``), never wall clock —
tracing a run is a pure host-side observation and by contract changes no
simulated result (the golden-determinism tests enforce this).

Track model (what Perfetto shows after export):

* **pid 0** is the rack-level control track: fault-injector events, whole
  -rack conditions, anything not attributable to one node.
* **one pid per node**, assigned in first-bind order.  Within a node,
  **tid 0** is the node control track (retire/teardown background work,
  crash/recover marks) and **tids >= 1 are invocation lanes**: each
  in-flight invocation holds a lane from bind to finish, and lanes are
  recycled smallest-first so concurrent invocations stack like rows in a
  flame chart instead of growing an unbounded tid space.

A :class:`TraceContext` is the explicit object threaded through
``cluster.py`` / ``runner.py`` / the platforms down to ``criu/restore.py``
and ``core/mm_template.py``.  It is deliberately *not* ambient state: the
engine interleaves generator tasks at the same virtual tick, so any
"current context" global would attribute spans to the wrong invocation.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple, Union

#: pid of the rack-level control track.
RACK_PID = 0
#: tid of the per-node (and rack) control track.
CONTROL_TID = 0

#: Accepted by SpanTracer.link for either endpoint.
OptionalCtxOrId = Union["TraceContext", int]


class TraceContext:
    """Identity of one traced invocation: a lane on a node's track.

    Created unbound (``pid == -1``) by :meth:`SpanTracer.begin`; bound to
    a node (and an invocation lane) by :meth:`SpanTracer.bind` — possibly
    more than once, when a cluster re-dispatches after a node crash.
    """

    __slots__ = ("trace_id", "function", "pid", "tid", "t_begin")

    def __init__(self, trace_id: int, function: str, t_begin: float):
        self.trace_id = trace_id
        self.function = function
        self.pid = -1
        self.tid = -1
        self.t_begin = t_begin

    @property
    def bound(self) -> bool:
        return self.pid >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceContext(#{self.trace_id} {self.function!r} "
                f"pid={self.pid} tid={self.tid})")


class SpanTracer:
    """Collects spans and instants keyed to the virtual clock.

    Storage is plain tuples (no per-span objects): a traced cluster run
    emits several spans per invocation, and the tracer must stay cheap
    enough that "spans" mode is usable on trace-scale scenarios.
    """

    def __init__(self):
        # (t0, t1, pid, tid, name, category, trace_id, args-or-None)
        self.spans: List[Tuple] = []
        # (t, pid, tid, name, args-or-None)
        self.instants: List[Tuple] = []
        # (t0, t1, kind, src_id, dst_id, args-or-None): causal edges
        # between invocations (0 = the environment).  Links need no
        # lane, so they can record waits that happen before a context
        # is ever bound to a node (admission queues, dispatch backoff).
        self.links: List[Tuple] = []
        self._procs: Dict[str, int] = {"rack": RACK_PID}
        self._free_lanes: Dict[int, List[int]] = {}
        self._lane_high: Dict[int, int] = {}
        self._next_id = 1

    # -- identity ------------------------------------------------------------

    def pid_for(self, node_name: str) -> int:
        """The pid of ``node_name``'s track (assigned on first use)."""
        pid = self._procs.get(node_name)
        if pid is None:
            pid = self._procs[node_name] = len(self._procs)
        return pid

    def prebind_nodes(self, node_names) -> None:
        """Assign pids for ``node_names`` now, in the given order.

        Cluster runs call this with the rack's platform list before any
        dispatch, pinning node->pid to rack order instead of first-bind
        order.  Every shard worker of a parallel run rebuilds the same
        rack, so prebinding makes the pid map a pure function of the
        spec — the property the span merge relies on.
        """
        for name in node_names:
            self.pid_for(name)

    def processes(self) -> Dict[str, int]:
        """{track name: pid} — "rack" plus every node seen so far."""
        return dict(self._procs)

    def lane_count(self, pid: int) -> int:
        """Highest invocation-lane tid ever allocated on ``pid``."""
        return self._lane_high.get(pid, CONTROL_TID + 1) - 1

    # -- context lifecycle -----------------------------------------------------

    def begin(self, function: str, t: float) -> TraceContext:
        """A fresh, unbound context for one invocation."""
        trace_id = self._next_id
        self._next_id += 1
        return TraceContext(trace_id, function, t)

    def bind(self, ctx: TraceContext, node_name: str) -> None:
        """Place ``ctx`` on a free invocation lane of ``node_name``.

        Re-binding (cluster re-dispatch after a crash) releases the old
        lane first, so the failed attempt and the retry occupy separate
        rows only if they overlap other work.
        """
        if ctx.pid >= 0:
            self._release_lane(ctx)
        pid = self.pid_for(node_name)
        free = self._free_lanes.get(pid)
        if free:
            tid = heapq.heappop(free)
        else:
            tid = self._lane_high.get(pid, CONTROL_TID + 1)
            self._lane_high[pid] = tid + 1
        ctx.pid = pid
        ctx.tid = tid

    def finish(self, ctx: TraceContext, t: float) -> None:
        """Close the invocation at ``t`` and release its lane.

        Emits an ``invocation_close`` instant on the lane (carrying the
        trace id) so lane lifetimes — bind at the first span, close
        here — are reconstructible from the trace alone.  A context
        that never bound (e.g. shed before dispatch) has no lane and
        closes silently.
        """
        if ctx.pid >= 0:
            self.instants.append((t, ctx.pid, ctx.tid, "invocation_close",
                                  {"trace_id": ctx.trace_id}))
        self._release_lane(ctx)

    def _release_lane(self, ctx: TraceContext) -> None:
        if ctx.pid >= 0:
            heapq.heappush(self._free_lanes.setdefault(ctx.pid, []),
                           ctx.tid)
            ctx.pid = -1
            ctx.tid = -1

    # -- recording -------------------------------------------------------------

    def span(self, ctx: Optional[TraceContext], name: str,
             t0: float, t1: float, cat: str = "phase",
             args: Optional[Dict] = None) -> None:
        """A complete span ``[t0, t1]`` on the context's lane."""
        if ctx is None or ctx.pid < 0:
            return
        self.spans.append((t0, t1, ctx.pid, ctx.tid, name, cat,
                           ctx.trace_id, args))

    def node_span(self, node_name: str, name: str, t0: float, t1: float,
                  cat: str = "node", args: Optional[Dict] = None) -> None:
        """A span on a node's control track (teardown, background work)."""
        self.spans.append((t0, t1, self.pid_for(node_name), CONTROL_TID,
                           name, cat, 0, args))

    def instant(self, name: str, t: float,
                node: Optional[str] = None,
                ctx: Optional[TraceContext] = None,
                args: Optional[Dict] = None) -> None:
        """A point event: on the ctx lane, a node control track, or rack."""
        if ctx is not None and ctx.pid >= 0:
            pid, tid = ctx.pid, ctx.tid
        elif node is not None:
            pid, tid = self.pid_for(node), CONTROL_TID
        else:
            pid, tid = RACK_PID, CONTROL_TID
        self.instants.append((t, pid, tid, name, args))

    def link(self, kind: str, t0: float, t1: float,
             src: "OptionalCtxOrId" = 0, dst: "OptionalCtxOrId" = 0,
             args: Optional[Dict] = None) -> None:
        """A causal edge: ``dst`` spent ``[t0, t1]`` waiting on ``src``.

        ``src``/``dst`` are :class:`TraceContext` objects or raw trace
        ids; 0 means "the environment" (a crash, a breaker, the rack).
        Unlike spans, links attach to trace ids, not lanes, so they work
        for contexts that are not (yet) bound to any node.
        """
        src_id = src.trace_id if isinstance(src, TraceContext) else int(src)
        dst_id = dst.trace_id if isinstance(dst, TraceContext) else int(dst)
        self.links.append((t0, t1, kind, src_id, dst_id, args))

    # -- (de)serialization — the shard-worker process boundary -----------------

    def to_dict(self) -> Dict:
        """JSON-safe snapshot: everything the span merge needs."""
        return {
            "procs": [[name, self._procs[name]]
                      for name in sorted(self._procs,
                                         key=lambda n: self._procs[n])],
            "lane_high": [[pid, self._lane_high[pid]]
                          for pid in sorted(self._lane_high)],
            "next_id": self._next_id,
            "spans": [list(s) for s in self.spans],
            "instants": [list(s) for s in self.instants],
            "links": [list(s) for s in self.links],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SpanTracer":
        tracer = cls()
        tracer._procs = {name: int(pid) for name, pid in data["procs"]}
        tracer._lane_high = {int(pid): int(high)
                             for pid, high in data["lane_high"]}
        tracer._next_id = int(data["next_id"])
        tracer.spans = [tuple(s) for s in data["spans"]]
        tracer.instants = [tuple(s) for s in data["instants"]]
        tracer.links = [tuple(s) for s in data["links"]]
        return tracer

    # -- stats -----------------------------------------------------------------

    @property
    def n_spans(self) -> int:
        return len(self.spans)

    @property
    def n_instants(self) -> int:
        return len(self.instants)

    @property
    def n_links(self) -> int:
        return len(self.links)
