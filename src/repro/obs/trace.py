"""Virtual-clock span tracer: the invocation lifecycle as trace events.

Spans record *simulated* timestamps (``sim.now``), never wall clock —
tracing a run is a pure host-side observation and by contract changes no
simulated result (the golden-determinism tests enforce this).

Track model (what Perfetto shows after export):

* **pid 0** is the rack-level control track: fault-injector events, whole
  -rack conditions, anything not attributable to one node.
* **one pid per node**, assigned in first-bind order.  Within a node,
  **tid 0** is the node control track (retire/teardown background work,
  crash/recover marks) and **tids >= 1 are invocation lanes**: each
  in-flight invocation holds a lane from bind to finish, and lanes are
  recycled smallest-first so concurrent invocations stack like rows in a
  flame chart instead of growing an unbounded tid space.

A :class:`TraceContext` is the explicit object threaded through
``cluster.py`` / ``runner.py`` / the platforms down to ``criu/restore.py``
and ``core/mm_template.py``.  It is deliberately *not* ambient state: the
engine interleaves generator tasks at the same virtual tick, so any
"current context" global would attribute spans to the wrong invocation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

#: pid of the rack-level control track.
RACK_PID = 0
#: tid of the per-node (and rack) control track.
CONTROL_TID = 0


class TraceContext:
    """Identity of one traced invocation: a lane on a node's track.

    Created unbound (``pid == -1``) by :meth:`SpanTracer.begin`; bound to
    a node (and an invocation lane) by :meth:`SpanTracer.bind` — possibly
    more than once, when a cluster re-dispatches after a node crash.
    """

    __slots__ = ("trace_id", "function", "pid", "tid", "t_begin")

    def __init__(self, trace_id: int, function: str, t_begin: float):
        self.trace_id = trace_id
        self.function = function
        self.pid = -1
        self.tid = -1
        self.t_begin = t_begin

    @property
    def bound(self) -> bool:
        return self.pid >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceContext(#{self.trace_id} {self.function!r} "
                f"pid={self.pid} tid={self.tid})")


class SpanTracer:
    """Collects spans and instants keyed to the virtual clock.

    Storage is plain tuples (no per-span objects): a traced cluster run
    emits several spans per invocation, and the tracer must stay cheap
    enough that "spans" mode is usable on trace-scale scenarios.
    """

    def __init__(self):
        # (t0, t1, pid, tid, name, category, trace_id, args-or-None)
        self.spans: List[Tuple] = []
        # (t, pid, tid, name, args-or-None)
        self.instants: List[Tuple] = []
        self._procs: Dict[str, int] = {"rack": RACK_PID}
        self._free_lanes: Dict[int, List[int]] = {}
        self._lane_high: Dict[int, int] = {}
        self._ids = itertools.count(1)

    # -- identity ------------------------------------------------------------

    def pid_for(self, node_name: str) -> int:
        """The pid of ``node_name``'s track (assigned on first use)."""
        pid = self._procs.get(node_name)
        if pid is None:
            pid = self._procs[node_name] = len(self._procs)
        return pid

    def processes(self) -> Dict[str, int]:
        """{track name: pid} — "rack" plus every node seen so far."""
        return dict(self._procs)

    def lane_count(self, pid: int) -> int:
        """Highest invocation-lane tid ever allocated on ``pid``."""
        return self._lane_high.get(pid, CONTROL_TID + 1) - 1

    # -- context lifecycle -----------------------------------------------------

    def begin(self, function: str, t: float) -> TraceContext:
        """A fresh, unbound context for one invocation."""
        return TraceContext(next(self._ids), function, t)

    def bind(self, ctx: TraceContext, node_name: str) -> None:
        """Place ``ctx`` on a free invocation lane of ``node_name``.

        Re-binding (cluster re-dispatch after a crash) releases the old
        lane first, so the failed attempt and the retry occupy separate
        rows only if they overlap other work.
        """
        if ctx.pid >= 0:
            self._release_lane(ctx)
        pid = self.pid_for(node_name)
        free = self._free_lanes.get(pid)
        if free:
            tid = heapq.heappop(free)
        else:
            tid = self._lane_high.get(pid, CONTROL_TID + 1)
            self._lane_high[pid] = tid + 1
        ctx.pid = pid
        ctx.tid = tid

    def finish(self, ctx: TraceContext, t: float) -> None:
        """Release the context's lane; ``t`` closes the invocation."""
        self._release_lane(ctx)

    def _release_lane(self, ctx: TraceContext) -> None:
        if ctx.pid >= 0:
            heapq.heappush(self._free_lanes.setdefault(ctx.pid, []),
                           ctx.tid)
            ctx.pid = -1
            ctx.tid = -1

    # -- recording -------------------------------------------------------------

    def span(self, ctx: Optional[TraceContext], name: str,
             t0: float, t1: float, cat: str = "phase",
             args: Optional[Dict] = None) -> None:
        """A complete span ``[t0, t1]`` on the context's lane."""
        if ctx is None or ctx.pid < 0:
            return
        self.spans.append((t0, t1, ctx.pid, ctx.tid, name, cat,
                           ctx.trace_id, args))

    def node_span(self, node_name: str, name: str, t0: float, t1: float,
                  cat: str = "node", args: Optional[Dict] = None) -> None:
        """A span on a node's control track (teardown, background work)."""
        self.spans.append((t0, t1, self.pid_for(node_name), CONTROL_TID,
                           name, cat, 0, args))

    def instant(self, name: str, t: float,
                node: Optional[str] = None,
                ctx: Optional[TraceContext] = None,
                args: Optional[Dict] = None) -> None:
        """A point event: on the ctx lane, a node control track, or rack."""
        if ctx is not None and ctx.pid >= 0:
            pid, tid = ctx.pid, ctx.tid
        elif node is not None:
            pid, tid = self.pid_for(node), CONTROL_TID
        else:
            pid, tid = RACK_PID, CONTROL_TID
        self.instants.append((t, pid, tid, name, args))

    # -- stats -----------------------------------------------------------------

    @property
    def n_spans(self) -> int:
        return len(self.spans)

    @property
    def n_instants(self) -> int:
        return len(self.instants)
